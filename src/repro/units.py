"""Engineering-unit handling and physical constants.

SPICE netlists express values with engineering suffixes (``10k``, ``2.2u``,
``100MEG``).  This module converts between such strings and floats and
provides the handful of physical constants used by the device models.
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

#: Boltzmann constant [J/K]
BOLTZMANN = 1.380649e-23
#: Elementary charge [C]
CHARGE = 1.602176634e-19
#: Absolute zero offset for Celsius → Kelvin conversion
CELSIUS_TO_KELVIN = 273.15
#: Default simulation temperature [°C]
DEFAULT_TEMPERATURE_C = 27.0
#: Permittivity of free space [F/m]
EPS0 = 8.8541878128e-12
#: Relative permittivity of SiO2
EPS_SIO2 = 3.9
#: Relative permittivity of silicon
EPS_SI = 11.7


def thermal_voltage(temperature_c: float = DEFAULT_TEMPERATURE_C) -> float:
    """Return kT/q in volts at the given temperature in Celsius."""
    return BOLTZMANN * (temperature_c + CELSIUS_TO_KELVIN) / CHARGE


# ---------------------------------------------------------------------------
# Engineering suffixes
# ---------------------------------------------------------------------------

#: SPICE engineering suffixes.  Order matters only for formatting; parsing is
#: case-insensitive and "meg" must be matched before "m".
_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
    "mil": 25.4e-6,
}

_NUMBER_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>[a-zA-Zµ]*)
        \s*$""",
    re.VERBOSE,
)


def parse_value(text: str | float | int) -> float:
    """Parse a SPICE numeric literal into a float.

    Accepts plain numbers, scientific notation and engineering suffixes
    (``k``, ``meg``, ``m``, ``u``, ``n``, ``p``, ``f`` ...).  Trailing unit
    letters after the suffix (``10kohm``, ``5pF``) are ignored, as in SPICE.

    >>> parse_value("2.2u")
    2.2e-06
    >>> parse_value("100MEG")
    100000000.0
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(str(text))
    if not match:
        raise UnitError(f"cannot parse numeric value {text!r}")
    value = float(match.group("number"))
    suffix = match.group("suffix").lower()
    if not suffix:
        return value
    if suffix.startswith("meg"):
        return value * 1e6
    if suffix.startswith("mil"):
        return value * 25.4e-6
    first = suffix[0]
    if first in _SUFFIXES:
        return value * _SUFFIXES[first]
    # Unknown suffix letters are unit names (e.g. "ohm", "v", "hz").
    return value


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format a float with an engineering suffix.

    >>> format_value(2.2e-6)
    '2.2u'
    >>> format_value(4700.0, "Ohm")
    '4.7kOhm'
    """
    if value == 0.0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for suffix, factor in (
        ("T", 1e12), ("G", 1e9), ("MEG", 1e6), ("k", 1e3), ("", 1.0),
        ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
    ):
        if magnitude >= factor:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text}{suffix}{unit}"
    return f"{value:.{digits}g}{unit}"


# ---------------------------------------------------------------------------
# Length conversions used by the layout package (internal unit: micrometres)
# ---------------------------------------------------------------------------

MICRON = 1.0
NANOMETRE = 1e-3
MILLIMETRE = 1e3
CENTIMETRE = 1e4


def um_to_cm2(area_um2: float) -> float:
    """Convert an area in square micrometres to square centimetres."""
    return area_um2 * 1e-8


def cm2_to_um2(area_cm2: float) -> float:
    """Convert an area in square centimetres to square micrometres."""
    return area_cm2 * 1e8
