"""Critical-area evaluation (Stapper-style) for shorts, opens and contacts.

The *critical area* A_c(x) of a failure opportunity is the area in which the
centre of a spot defect of diameter ``x`` must fall to cause the failure.
Weighting A_c(x) with the defect-size distribution and multiplying by the
defect density of the corresponding failure mechanism yields the probability
of occurrence of the resulting fault (the ``p_j`` of the paper, typically
1e-7 .. 1e-9 per fault).
"""

from __future__ import annotations

import numpy as np

from ..layout.geometry import Rect
from ..units import um_to_cm2
from .statistics import DefectSizeDistribution


# ---------------------------------------------------------------------------
# Raw critical-area expressions (sizes and lengths in micrometres)
# ---------------------------------------------------------------------------

def bridge_critical_area(x, spacing: float, facing_length: float):
    """Critical area for a short between two parallel wires.

    Parameters
    ----------
    x:
        Defect diameter(s) [um] (scalar or array).
    spacing:
        Edge-to-edge spacing between the two wires [um].
    facing_length:
        Length over which the wires run parallel [um].
    """
    x = np.asarray(x, dtype=float)
    excess = np.maximum(x - spacing, 0.0)
    return excess * (facing_length + excess)


def open_critical_area(x, width: float, length: float):
    """Critical area for an open of a wire of the given width and length."""
    x = np.asarray(x, dtype=float)
    excess = np.maximum(x - width, 0.0)
    return excess * (length + excess)


def contact_open_critical_area(x, cut_size: float):
    """Critical area for a missing contact/via of the given cut size.

    The defect must cover the whole cut, so its centre must fall within a
    square of side ``x - cut_size``.
    """
    x = np.asarray(x, dtype=float)
    excess = np.maximum(x - cut_size, 0.0)
    return excess * excess


# ---------------------------------------------------------------------------
# Size-distribution weighting
# ---------------------------------------------------------------------------

def weighted_bridge_area(distribution: DefectSizeDistribution, spacing: float,
                         facing_length: float) -> float:
    """E[A_c(x)] for a bridge, in um^2."""
    if spacing >= distribution.max_size:
        return 0.0
    return distribution.expectation(
        lambda x: bridge_critical_area(x, spacing, facing_length),
        lower=spacing)


def weighted_open_area(distribution: DefectSizeDistribution, width: float,
                       length: float) -> float:
    """E[A_c(x)] for a wire open, in um^2."""
    if width >= distribution.max_size:
        return 0.0
    return distribution.expectation(
        lambda x: open_critical_area(x, width, length), lower=width)


def weighted_contact_area(distribution: DefectSizeDistribution,
                          cut_size: float) -> float:
    """E[A_c(x)] for a contact/via open, in um^2."""
    if cut_size >= distribution.max_size:
        return 0.0
    return distribution.expectation(
        lambda x: contact_open_critical_area(x, cut_size), lower=cut_size)


def failure_probability(weighted_area_um2: float,
                        density_per_cm2: float) -> float:
    """Convert a size-weighted critical area and a defect density into a
    probability of occurrence of the fault."""
    return density_per_cm2 * um_to_cm2(max(weighted_area_um2, 0.0))


# ---------------------------------------------------------------------------
# Geometry helpers used by the fault extractor
# ---------------------------------------------------------------------------

def facing_geometry(a: Rect, b: Rect) -> tuple[float, float]:
    """Spacing and facing length of two rectangles (see :meth:`Rect.facing`)."""
    return a.facing(b)


def wire_dimensions(rect: Rect) -> tuple[float, float]:
    """Interpret a rectangle as a wire: (width, length) with width <= length."""
    return (rect.min_dimension, rect.max_dimension)
