"""Defect statistics: failure mechanisms, densities and size distribution.

Table 1 of the paper lists the likely physical failure modes of a digital
CMOS process together with their *relative* defect densities (normalised to
the metal-1 short density, for which a typical absolute value of
1 defect/cm^2 is quoted).  The defect *size* distribution follows the
Ferris-Prabhu model: linear rise up to the peak size ``x0`` and a 1/x^3 tail
above it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DefectModelError

#: Fault kinds a failure mechanism can cause.
SHORT = "short"
OPEN = "open"


@dataclass(frozen=True)
class FailureMechanism:
    """One row of Tab. 1: a layer, a failure mode and its relative density."""

    layer: str
    kind: str              # "short" or "open"
    relative_density: float
    symbol: str = ""

    def __post_init__(self):
        if self.kind not in (SHORT, OPEN):
            raise DefectModelError(f"unknown failure kind {self.kind!r}")
        if self.relative_density < 0.0:
            raise DefectModelError("relative density must be non-negative")


#: Tab. 1 of the paper, verbatim (relative densities normalised to the
#: metal-1 short density).
TABLE_1 = (
    FailureMechanism("ndiff", OPEN, 0.01, "ad"),
    FailureMechanism("ndiff", SHORT, 1.00, "bd"),
    FailureMechanism("pdiff", OPEN, 0.01, "ad"),
    FailureMechanism("pdiff", SHORT, 1.00, "bd"),
    FailureMechanism("poly", OPEN, 0.25, "ap"),
    FailureMechanism("poly", SHORT, 1.25, "bp"),
    FailureMechanism("metal1", OPEN, 0.01, "am1"),
    FailureMechanism("metal1", SHORT, 1.00, "bm1"),
    FailureMechanism("metal2", OPEN, 0.02, "am2"),
    FailureMechanism("metal2", SHORT, 1.50, "bm2"),
    FailureMechanism("contact_diff", OPEN, 0.66, "acd"),
    FailureMechanism("contact_poly", OPEN, 0.67, "acp"),
    FailureMechanism("via", OPEN, 0.80, "acv"),
)

#: Typical absolute metal-1 short defect density [defects/cm^2] (section IV).
DEFAULT_REFERENCE_DENSITY = 1.0


class DefectStatistics:
    """Per-mechanism defect densities.

    Parameters
    ----------
    mechanisms:
        Iterable of :class:`FailureMechanism`; defaults to Tab. 1.
    reference_density:
        Absolute density [defects/cm^2] corresponding to relative density 1.0
        (the metal-1 short density).
    """

    def __init__(self, mechanisms=None,
                 reference_density: float = DEFAULT_REFERENCE_DENSITY):
        self.mechanisms: dict[tuple[str, str], FailureMechanism] = {}
        for mechanism in (mechanisms if mechanisms is not None else TABLE_1):
            self.mechanisms[(mechanism.layer, mechanism.kind)] = mechanism
        if reference_density <= 0.0:
            raise DefectModelError("reference density must be positive")
        self.reference_density = reference_density

    # ------------------------------------------------------------------
    @classmethod
    def table_1(cls, reference_density: float = DEFAULT_REFERENCE_DENSITY
                ) -> "DefectStatistics":
        """The default statistics of the paper's Tab. 1."""
        return cls(TABLE_1, reference_density)

    # ------------------------------------------------------------------
    def mechanism(self, layer: str, kind: str) -> FailureMechanism | None:
        return self.mechanisms.get((str(layer).lower(), kind))

    def relative_density(self, layer: str, kind: str) -> float:
        mechanism = self.mechanism(layer, kind)
        return mechanism.relative_density if mechanism else 0.0

    def density(self, layer: str, kind: str) -> float:
        """Absolute defect density [defects/cm^2] for a layer/kind."""
        return self.relative_density(layer, kind) * self.reference_density

    def layers(self) -> list[str]:
        return sorted({layer for layer, _ in self.mechanisms})

    def rows(self) -> list[FailureMechanism]:
        """All mechanisms, in Tab. 1 order."""
        return list(self.mechanisms.values())

    def beta_alpha_ratio(self, layer: str) -> float:
        """Short-to-open density ratio of a layer (the paper notes it is
        around 100 for typical lines, motivating the focus on bridges)."""
        opens = self.relative_density(layer, OPEN)
        shorts = self.relative_density(layer, SHORT)
        if opens == 0.0:
            return float("inf") if shorts > 0.0 else 0.0
        return shorts / opens

    def as_table(self) -> list[tuple[str, str, str, float]]:
        """Rows of Tab. 1 as (layer, failure, symbol, relative density)."""
        return [(m.layer, m.kind, m.symbol, m.relative_density)
                for m in self.rows()]

    def format_table(self) -> str:
        """Pretty-print Tab. 1 for reports and benchmarks."""
        lines = [f"{'Layer':<14}{'Failure':<10}{'Symbol':<8}{'Rel. density':>12}"]
        lines.append("-" * 44)
        for layer, kind, symbol, density in self.as_table():
            lines.append(f"{layer:<14}{kind:<10}{symbol:<8}{density:>12.2f}")
        lines.append("-" * 44)
        lines.append(f"reference density: {self.reference_density:g} defects/cm^2 "
                     "(metal-1 shorts)")
        return "\n".join(lines)


class DefectSizeDistribution:
    """Ferris-Prabhu defect-size probability density.

    ``f(x) = c * x / x0^2`` for ``x <= x0`` and ``c * x0^(p-1) / x^p`` above,
    with ``p = 3`` by default, defined on ``[x_min, x_max]`` and normalised to
    integrate to one.  Sizes are in micrometres.
    """

    def __init__(self, peak_size: float = 2.0, max_size: float = 20.0,
                 min_size: float = 0.1, power: float = 3.0):
        if not (0.0 < min_size < peak_size < max_size):
            raise DefectModelError(
                "sizes must satisfy 0 < min_size < peak_size < max_size")
        if power <= 1.0:
            raise DefectModelError("power-law exponent must exceed 1")
        self.peak_size = float(peak_size)
        self.max_size = float(max_size)
        self.min_size = float(min_size)
        self.power = float(power)
        self._norm = 1.0
        self._norm = 1.0 / self._raw_integral()

    # ------------------------------------------------------------------
    def _raw_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        x0, p = self.peak_size, self.power
        rising = x / (x0 * x0)
        falling = np.power(x0, p - 1.0) / np.power(np.maximum(x, 1e-30), p)
        pdf = np.where(x <= x0, rising, falling)
        pdf = np.where((x < self.min_size) | (x > self.max_size), 0.0, pdf)
        return pdf

    def _raw_integral(self) -> float:
        xs = np.linspace(self.min_size, self.max_size, 4001)
        return float(np.trapezoid(self._raw_pdf(xs), xs))

    # ------------------------------------------------------------------
    def pdf(self, x) -> np.ndarray | float:
        """Probability density at defect diameter ``x`` [1/um]."""
        values = self._raw_pdf(x) * self._norm
        if np.isscalar(x):
            return float(values)
        return values

    def cdf(self, x: float) -> float:
        """Cumulative probability of defect diameters up to ``x``."""
        if x <= self.min_size:
            return 0.0
        upper = min(x, self.max_size)
        xs = np.linspace(self.min_size, upper, 2001)
        return float(np.trapezoid(self.pdf(xs), xs))

    def mean(self) -> float:
        xs = np.linspace(self.min_size, self.max_size, 4001)
        return float(np.trapezoid(xs * self.pdf(xs), xs))

    def expectation(self, func, lower: float | None = None,
                    upper: float | None = None, samples: int = 801) -> float:
        """Numerically evaluate ``E[func(x)]`` over the size distribution.

        ``func`` must be vectorised (accept a numpy array).  This is the
        integral used to weight critical areas by defect size probability.
        """
        lower = self.min_size if lower is None else max(lower, self.min_size)
        upper = self.max_size if upper is None else min(upper, self.max_size)
        if upper <= lower:
            return 0.0
        xs = np.linspace(lower, upper, samples)
        return float(np.trapezoid(np.asarray(func(xs), dtype=float) * self.pdf(xs), xs))

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw defect diameters by inverse-transform sampling on a grid."""
        xs = np.linspace(self.min_size, self.max_size, 2001)
        pdf = self.pdf(xs)
        cdf = np.cumsum(pdf)
        cdf /= cdf[-1]
        uniform = rng.random(count)
        return np.interp(uniform, cdf, xs)
