"""Defect modelling: statistics (Tab. 1), size distribution, critical areas
and Monte-Carlo spot-defect sampling."""

from .statistics import (
    DEFAULT_REFERENCE_DENSITY,
    OPEN,
    SHORT,
    TABLE_1,
    DefectSizeDistribution,
    DefectStatistics,
    FailureMechanism,
)
from .critical_area import (
    bridge_critical_area,
    contact_open_critical_area,
    facing_geometry,
    failure_probability,
    open_critical_area,
    weighted_bridge_area,
    weighted_contact_area,
    weighted_open_area,
    wire_dimensions,
)
from .spot import (
    MonteCarloResult,
    SpotDefect,
    SpotDefectOutcome,
    SpotDefectSampler,
)

__all__ = [
    "DEFAULT_REFERENCE_DENSITY",
    "OPEN",
    "SHORT",
    "TABLE_1",
    "DefectSizeDistribution",
    "DefectStatistics",
    "FailureMechanism",
    "bridge_critical_area",
    "open_critical_area",
    "contact_open_critical_area",
    "weighted_bridge_area",
    "weighted_open_area",
    "weighted_contact_area",
    "failure_probability",
    "facing_geometry",
    "wire_dimensions",
    "MonteCarloResult",
    "SpotDefect",
    "SpotDefectOutcome",
    "SpotDefectSampler",
]
