"""Monte-Carlo spot-defect injection (inductive fault analysis style).

This is the IFA cross-check referenced in section II of the paper: random
spot defects are sprinkled over the layout according to the defect
statistics; defects large enough to bridge two nets or cut a wire are
translated into faults.  The analytic critical-area extraction of
:mod:`repro.lift.extraction` should agree with the Monte-Carlo estimate in
the limit of many samples; a benchmark verifies this.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..extract.connectivity import ConnectivityResult
from ..layout.geometry import Rect
from ..layout.layout import Layout
from .statistics import SHORT, DefectSizeDistribution, DefectStatistics


@dataclass
class SpotDefect:
    """One sampled spot defect."""

    layer: str
    kind: str
    x: float
    y: float
    diameter: float

    @property
    def rect(self) -> Rect:
        radius = self.diameter / 2.0
        return Rect(self.x - radius, self.y - radius,
                    self.x + radius, self.y + radius)


@dataclass
class SpotDefectOutcome:
    """Electrical consequence of one spot defect."""

    defect: SpotDefect
    effect: str                       # "none", "bridge", "open"
    nets: tuple[str, ...] = ()


@dataclass
class MonteCarloResult:
    """Aggregate of a spot-defect campaign."""

    outcomes: list[SpotDefectOutcome] = field(default_factory=list)
    samples: int = 0

    def count_by_effect(self) -> Counter:
        return Counter(o.effect for o in self.outcomes)

    def bridge_pairs(self) -> Counter:
        return Counter(tuple(sorted(o.nets)) for o in self.outcomes
                       if o.effect == "bridge")

    def fault_fraction(self) -> float:
        if not self.samples:
            return 0.0
        faulty = sum(1 for o in self.outcomes if o.effect != "none")
        return faulty / self.samples


class SpotDefectSampler:
    """Sample spot defects over a layout and classify their effect."""

    def __init__(self, layout: Layout, connectivity: ConnectivityResult,
                 statistics: DefectStatistics | None = None,
                 distribution: DefectSizeDistribution | None = None,
                 seed: int = 1995):
        self.layout = layout
        self.connectivity = connectivity
        self.statistics = statistics or DefectStatistics.table_1()
        self.distribution = distribution or DefectSizeDistribution()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _mechanism_weights(self) -> tuple[list[tuple[str, str]], np.ndarray]:
        keys: list[tuple[str, str]] = []
        weights: list[float] = []
        for mechanism in self.statistics.rows():
            # Only mechanisms on layers present in the layout matter; the
            # contact/via open mechanisms are skipped here because a missing
            # contact is not a spot of extra/missing material on a routing
            # layer (the analytic extractor handles them).
            if mechanism.layer.startswith("contact") or mechanism.layer == "via":
                continue
            keys.append((mechanism.layer, mechanism.kind))
            weights.append(mechanism.relative_density)
        weight_array = np.asarray(weights, dtype=float)
        return keys, weight_array / weight_array.sum()

    def sample(self, count: int) -> MonteCarloResult:
        """Sample ``count`` defects and classify each one."""
        box = self.layout.bbox()
        result = MonteCarloResult(samples=count)
        if box is None:
            return result
        keys, weights = self._mechanism_weights()
        chosen = self.rng.choice(len(keys), size=count, p=weights)
        xs = self.rng.uniform(box.x1, box.x2, size=count)
        ys = self.rng.uniform(box.y1, box.y2, size=count)
        sizes = self.distribution.sample(self.rng, count)
        for i in range(count):
            layer, kind = keys[chosen[i]]
            defect = SpotDefect(layer, kind, float(xs[i]), float(ys[i]),
                                float(sizes[i]))
            result.outcomes.append(self._classify(defect))
        return result

    # ------------------------------------------------------------------
    def classify(self, defect: SpotDefect) -> SpotDefectOutcome:
        """Classify one (possibly hand-constructed) defect.

        The public entry the defect-driven fault generator
        (:mod:`repro.anafault.faultgen`) uses to ask "what would this
        spot do?" without running a whole :meth:`sample` campaign.
        """
        return self._classify(defect)

    def monte_carlo_bridge_area(self, a: Rect, b: Rect,
                                samples: int = 256) -> float:
        """Monte-Carlo estimate of the size-weighted bridge critical area
        ``E[A_c]`` [um^2] for two conductors with *irregular* facing
        geometry (diagonal neighbours, where the parallel-wire expression
        of :func:`repro.defects.weighted_bridge_area` does not apply).

        Defect diameters are drawn from the size distribution and centres
        uniformly over the pair's neighbourhood (the union bounding box
        grown by half the maximum defect size); a draw is a hit when the
        defect square touches both rectangles — the same touch predicate
        :meth:`classify` applies to sampled defects.  The estimate is the
        neighbourhood area times the hit fraction, which converges to the
        exact size-weighted critical area.
        """
        if samples <= 0:
            return 0.0
        window = a.union_bbox(b).expanded(self.distribution.max_size / 2.0)
        xs = self.rng.uniform(window.x1, window.x2, size=samples)
        ys = self.rng.uniform(window.y1, window.y2, size=samples)
        radius = self.distribution.sample(self.rng, samples) / 2.0

        def touches(rect: Rect) -> np.ndarray:
            # Vectorised Rect.touches of the defect squares against rect.
            return ((xs - radius <= rect.x2) & (xs + radius >= rect.x1)
                    & (ys - radius <= rect.y2) & (ys + radius >= rect.y1))

        hits = int(np.count_nonzero(touches(a) & touches(b)))
        return window.area * hits / samples

    # ------------------------------------------------------------------
    def _classify(self, defect: SpotDefect) -> SpotDefectOutcome:
        pieces = [p for p in self.connectivity.pieces
                  if p.layer.name == defect.layer
                  and p.rect.touches(defect.rect)]
        if not pieces:
            return SpotDefectOutcome(defect, "none")
        nets = {self.connectivity.piece_net[p.index] for p in pieces}
        if defect.kind == SHORT:
            if len(nets) >= 2:
                return SpotDefectOutcome(defect, "bridge", tuple(sorted(nets)))
            return SpotDefectOutcome(defect, "none", tuple(nets))
        # Open: the defect must span the full width of at least one piece.
        for piece in pieces:
            rect = piece.rect
            spans_x = (defect.rect.x1 <= rect.x1 and defect.rect.x2 >= rect.x2)
            spans_y = (defect.rect.y1 <= rect.y1 and defect.rect.y2 >= rect.y2)
            if (spans_x and rect.width <= defect.diameter) or \
                    (spans_y and rect.height <= defect.diameter):
                net = self.connectivity.piece_net[piece.index]
                return SpotDefectOutcome(defect, "open", (net,))
        return SpotDefectOutcome(defect, "none", tuple(sorted(nets)))
