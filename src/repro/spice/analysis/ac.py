"""Small-signal AC analysis."""

from __future__ import annotations

import numpy as np

from ...errors import AnalysisError
from ..netlist import Circuit, normalize_node
from ..waveform import Waveform
from .dc import solve_operating_point
from .mna import MNABuilder, SimulationOptions


class ACResult:
    """Complex node voltages versus frequency."""

    def __init__(self, frequencies: np.ndarray,
                 node_traces: dict[str, np.ndarray]):
        self.frequencies = np.asarray(frequencies, dtype=float)
        self._nodes = node_traces

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def complex_waveform(self, node: str) -> np.ndarray:
        node = normalize_node(node)
        if node not in self._nodes:
            raise AnalysisError(f"unknown node {node!r} in AC result")
        return self._nodes[node]

    def magnitude(self, node: str) -> Waveform:
        values = np.abs(self.complex_waveform(node))
        return Waveform(self.frequencies, values, name=f"|v({node})|",
                        x_unit="Hz")

    def magnitude_db(self, node: str) -> Waveform:
        values = 20.0 * np.log10(np.maximum(np.abs(self.complex_waveform(node)),
                                            1e-30))
        return Waveform(self.frequencies, values, name=f"vdb({node})",
                        unit="dB", x_unit="Hz")

    def phase_deg(self, node: str) -> Waveform:
        values = np.degrees(np.angle(self.complex_waveform(node)))
        return Waveform(self.frequencies, values, name=f"vp({node})",
                        unit="deg", x_unit="Hz")


class ACAnalysis:
    """SPICE ``.ac dec|lin n fstart fstop`` equivalent."""

    def __init__(self, circuit: Circuit, fstart: float, fstop: float,
                 points: int = 10, sweep: str = "dec",
                 options: SimulationOptions | None = None):
        if fstart <= 0.0 or fstop <= 0.0 or fstop < fstart:
            raise AnalysisError("invalid AC frequency range")
        if points < 1:
            raise AnalysisError("AC analysis needs at least one point")
        if sweep not in ("dec", "lin"):
            raise AnalysisError(f"unknown AC sweep type {sweep!r}")
        self.circuit = circuit
        self.fstart = float(fstart)
        self.fstop = float(fstop)
        self.points = int(points)
        self.sweep = sweep
        self.options = options or SimulationOptions()

    def frequencies(self) -> np.ndarray:
        if self.sweep == "lin":
            return np.linspace(self.fstart, self.fstop, self.points)
        decades = np.log10(self.fstop / self.fstart)
        count = max(int(np.ceil(decades * self.points)) + 1, 2)
        return np.logspace(np.log10(self.fstart), np.log10(self.fstop), count)

    def run(self) -> ACResult:
        builder = MNABuilder(self.circuit, self.options)
        # Linearise around the DC operating point.
        op_solution = solve_operating_point(builder)
        op_state = builder.new_state("op")
        op_state.x = op_solution
        builder.build(op_state)  # refresh device linearisations at the OP

        freqs = self.frequencies()
        traces = {name: np.zeros(freqs.size, dtype=complex)
                  for name in builder.node_names}
        for index, frequency in enumerate(freqs):
            state = builder.new_state("ac")
            state.x = op_solution
            state.omega = 2.0 * np.pi * float(frequency)
            system = builder.build_ac(state)
            solution = system.solve()
            for name, node_idx in builder.node_index.items():
                traces[name][index] = solution[node_idx]
        return ACResult(freqs, traces)
