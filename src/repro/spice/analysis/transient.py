"""Transient analysis with fixed print step and adaptive internal stepping.

Two timestep policies are available, selected by :class:`TransientOptions`:

``mode="fixed"`` (default)
    The legacy driver: one internal sub-step per print interval, halved on
    Newton failure and grown back gently.  Bit-reproducible run to run,
    which is what the campaign checkpoints key on.

``mode="adaptive"``
    A local-truncation-error (LTE) controlled variable-step,
    *variable-order* integrator.  Each accepted step is checked against a
    per-node error tolerance using the classic predictor-corrector
    estimate — a divided-difference polynomial extrapolated through the
    accepted state history is compared against the corrector solution —
    and the next step size follows the standard ``(tol/lte)^(1/(p+1))``
    controller with growth clamps.  On top of the order-2 trap/BE pair the
    driver runs fixed-leading-coefficient BDF (Gear) methods up to order
    ``TransientOptions.max_order`` (default 5): after each accepted step
    the error estimate one order below and above the current order is
    formed from higher divided differences of the history, and the order
    whose controller would allow the largest next step wins (with a bias
    towards staying put and a hold-off after every change).  Print points
    are filled by polynomial interpolation of matching order, so smooth
    intervals are integrated with steps far larger than the print
    interval (fewer Newton solves), while switching edges are refined
    below it at low order.

The linear algebra of every timestep goes through the solver backend
selected for the circuit (:mod:`repro.spice.analysis.backends`): dense
LAPACK below the size threshold, sparse SuperLU above it, overridable via
``solver_backend``.  The choice taken, together with iteration and step
counts, is reported in :attr:`TransientResult.stats`.
"""

from __future__ import annotations

import math
import warnings
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ...errors import (AnalysisError, ConvergenceError, SingularMatrixError,
                       TransientError)
from ..netlist import Circuit, normalize_node, GROUND
from ..waveform import Waveform
from .dc import solve_operating_point
from .mna import MNABuilder, SimState, SimulationOptions
from .newton import solve_newton

#: Hard ceiling on the number of print points (guards against pathological
#: ``tstop/tstep`` ratios allocating unbounded trace memory).
MAX_PRINT_POINTS = 5_000_000

#: Recognised :attr:`TransientOptions.mode` values.
TIMESTEP_MODES = ("fixed", "adaptive")

#: Highest supported integration order (BDF-5; BDF-6 is barely stable and
#: never worth its history bookkeeping in practice).
MAX_BDF_ORDER = 5

#: ``alpha_s(k) = sum_{j=1..k} 1/j`` — the fixed leading coefficient of the
#: BDF-k corrector ``x'_n = P'(t_n) + alpha_s/h * (x_n - P(t_n))`` where
#: ``P`` is the degree-k predictor polynomial through the last ``k+1``
#: accepted points (the DASSL formulation; on a uniform grid it reduces to
#: the textbook BDF formulas, and at k=1 to backward Euler on any grid).
_ALPHA_S = {k: sum(1.0 / j for j in range(1, k + 1))
            for k in range(1, MAX_BDF_ORDER + 1)}

#: Accepted steps required between step-size *increases* while running at
#: BDF order k.  Variable-step BDF recurrences lose zero-stability under
#: sustained geometric step growth (the tolerable consecutive-ratio bound
#: shrinks rapidly with order); isolated sqrt(2)-rung jumps separated by
#: this many uniform steps keep the error amplification bounded at every
#: order (measured on analytic references; growth at orders 1-2 is
#: unrestricted, as the legacy trap/BE driver had it).
_BDF_GROW_HOLD = {3: 1, 4: 2, 5: 5}

#: Largest single-step growth ratio at BDF orders >= 3: one quantisation
#: ladder rung (sqrt(2)), with head room so the floor-quantiser still
#: lands on the next rung.
_BDF_GROW_CAP = 1.5


@dataclass
class TransientOptions:
    """Timestep-control policy of one transient analysis.

    The default (``mode="fixed"``) reproduces the legacy driver exactly:
    one internal sub-step per print interval, halved on Newton failure.
    Campaigns pin this mode by default so that checkpointed runs stay
    bit-reproducible across resumes (the options travel inside
    ``CampaignSettings`` and are part of the campaign fingerprint).

    ``mode="adaptive"`` enables the LTE controller described in the module
    docstring; see ``docs/integration.md`` for the estimator maths and
    guidance on the knobs.
    """

    #: ``"fixed"`` (legacy print-step grid) or ``"adaptive"`` (LTE control).
    mode: str = "fixed"
    #: Relative LTE tolerance per node voltage.
    lte_reltol: float = 1e-3
    #: Absolute LTE tolerance per node voltage [V].
    lte_abstol: float = 1e-6
    #: Hard floor on the internal step [s]; ``None`` uses
    #: ``tstep * SimulationOptions.min_step_fraction``.  When the controller
    #: is driven to the floor and the step still fails, the run aborts with
    #: :class:`~repro.errors.TransientError` instead of looping towards
    #: denormal step sizes.
    dt_min: float | None = None
    #: Ceiling on the internal step [s]; ``None`` uses ``8 * tstep`` in
    #: adaptive mode (the print interval itself bounds fixed mode).
    dt_max: float | None = None
    #: First internal step [s] of an adaptive run; ``None`` uses
    #: ``tstep * SimulationOptions.min_step_fraction``.  The first step has
    #: no history to estimate LTE from, so it is taken small and the
    #: controller grows out of it within a few steps; an uncontrolled
    #: full-``tstep`` backward-Euler first step would otherwise dominate
    #: the global error of the whole run.  (Fixed mode always starts at
    #: ``tstep``, as the legacy driver did.)
    dt_initial: float | None = None
    #: Largest step-growth factor per accepted step.
    dt_grow: float = 2.0
    #: Smallest step-shrink factor per rejected step.
    dt_shrink: float = 0.1
    #: Safety factor applied to the ``(tol/lte)^(1/(p+1))`` controller.
    safety: float = 0.9
    #: Fill print points by polynomial interpolation (same order as the
    #: integration method) instead of clamping every internal step to the
    #: next print target.  Interpolation is where the Newton-solve savings
    #: come from; disable it to force solver output at every print point.
    interpolate_prints: bool = True
    #: Start each Newton solve from the divided-difference predictor
    #: instead of the previous solution.  Under LTE control the predictor
    #: is accurate by construction (a step whose predictor is poor gets
    #: rejected), so this typically saves an iteration per smooth step; it
    #: can cost iterations at very loose tolerances where steps outrun the
    #: predictor's validity.
    predictor_guess: bool = True
    #: Snap adaptive steps down onto the geometric ladder
    #: ``tstep * 2^(k/2)`` so the per-step-size factorisation caches
    #: (LU/``freeze_solver``) see a bounded set of distinct step sizes.
    quantize_steps: bool = True
    #: Capacity of the per-step-size factorisation LRU cache used by the
    #: linear-bypass path (least recently used step sizes are evicted).
    solver_cache_size: int = 16
    #: Highest integration order the adaptive order controller may select:
    #: 1 = backward Euler, 2 = trapezoidal (or BDF-2 under
    #: ``SimulationOptions.integration="gear"``), 3..5 = BDF-k.  Fixed mode
    #: and ``integration="be"`` ignore it.
    max_order: int = MAX_BDF_ORDER
    #: Lowest order the controller may select once the startup ramp has
    #: built enough history (the ramp itself always starts at order 1).
    #: Pinning ``min_order == max_order == k`` forces BDF-k, which is how
    #: the convergence-order tests isolate a single method.
    min_order: int = 1

    def validate(self) -> None:
        """Raise :class:`~repro.errors.AnalysisError` on unusable knobs."""
        if self.mode not in TIMESTEP_MODES:
            raise AnalysisError(
                f"unknown timestep mode {self.mode!r}; expected one of "
                f"{', '.join(TIMESTEP_MODES)}")
        if self.lte_reltol <= 0.0 or self.lte_abstol <= 0.0:
            raise AnalysisError("LTE tolerances must be positive")
        if not 0.0 < self.dt_shrink < 1.0:
            raise AnalysisError("dt_shrink must be in (0, 1)")
        if self.dt_grow < 1.0:
            raise AnalysisError("dt_grow must be >= 1")
        if not 0.0 < self.safety <= 1.0:
            raise AnalysisError("safety must be in (0, 1]")
        if self.dt_min is not None and self.dt_min <= 0.0:
            raise AnalysisError("dt_min must be positive")
        if self.dt_max is not None and self.dt_max <= 0.0:
            raise AnalysisError("dt_max must be positive")
        if self.dt_initial is not None and self.dt_initial <= 0.0:
            raise AnalysisError("dt_initial must be positive")
        if (self.dt_min is not None and self.dt_max is not None
                and self.dt_min > self.dt_max):
            raise AnalysisError("dt_min must not exceed dt_max")
        if self.solver_cache_size < 1:
            raise AnalysisError("solver_cache_size must be >= 1")
        if not 1 <= self.min_order <= self.max_order <= MAX_BDF_ORDER:
            raise AnalysisError(
                f"need 1 <= min_order <= max_order <= {MAX_BDF_ORDER}, got "
                f"min_order={self.min_order}, max_order={self.max_order}")


class _LRUCache:
    """Tiny least-recently-used mapping for per-step-size solver caches.

    The adaptive driver produces a changing set of step sizes; keeping one
    frozen factorisation per size ever seen would grow without bound on
    long runs, so lookups refresh recency and insertions evict the oldest
    entry beyond ``maxsize``.
    """

    def __init__(self, maxsize: int):
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        try:
            self._data.move_to_end(key)
        except KeyError:
            return None
        return self._data[key]

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


def quantize_step(dt: float, tstep: float) -> float:
    """Snap ``dt`` down onto the geometric ladder ``tstep * 2^(k/2)``.

    The adaptive controller proposes a continuum of step sizes; quantising
    them onto a sparse geometric grid makes repeated step sizes common, so
    the per-step-size factorisation caches actually hit (at a worst-case
    cost of ``sqrt(2)`` in step size, well inside the controller's own
    safety margin).
    """
    if dt <= 0.0 or tstep <= 0.0:
        return dt
    k = math.floor(2.0 * math.log2(dt / tstep))
    quantized = tstep * 2.0 ** (k / 2.0)
    # Guard the floor direction against log/pow round-off.
    while quantized > dt * (1.0 + 1e-12):
        k -= 1
        quantized = tstep * 2.0 ** (k / 2.0)
    return quantized


class TransientResult:
    """Node voltages versus time.

    Signals can be read with ``result["11"]``, ``result["v(11)"]`` or
    :meth:`waveform`, all returning :class:`~repro.spice.waveform.Waveform`
    objects.  Kernel telemetry of the run (Newton iterations, accepted and
    rejected internal steps, linear-bypass flag) is available in
    :attr:`stats`.
    """

    def __init__(self, time: np.ndarray, node_traces: dict[str, np.ndarray],
                 branch_traces: dict[str, np.ndarray] | None = None,
                 stats: dict | None = None,
                 tail_time: np.ndarray | None = None,
                 tail_traces: dict[str, np.ndarray] | None = None):
        self.time = np.asarray(time, dtype=float)
        self._nodes = node_traces
        self._branches = branch_traces or {}
        self.stats = dict(stats or {})
        #: Print times of the downsampled reporting tail (streaming runs
        #: with ``tail_downsample``; ``None`` otherwise).
        self.tail_time = (None if tail_time is None
                          else np.asarray(tail_time, dtype=float))
        self._tail = tail_traces or {}

    @staticmethod
    def _canonical(signal: str) -> str:
        text = signal.strip().lower()
        if text.startswith("v(") and text.endswith(")"):
            text = text[2:-1]
        return normalize_node(text)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    @property
    def newton_iterations(self) -> int:
        """Total linear solves spent across the run (workload metric)."""
        return int(self.stats.get("newton_iterations", 0))

    def waveform(self, signal: str) -> Waveform:
        key = self._canonical(signal)
        if key == GROUND:
            return Waveform(self.time, np.zeros_like(self.time), name="v(0)")
        if key in self._nodes:
            return Waveform(self.time, self._nodes[key], name=f"v({key})")
        if key in self._branches:
            return Waveform(self.time, self._branches[key], name=f"i({key})",
                            unit="A")
        if key in self._tail:
            # Streaming run: the node was not selected for full-resolution
            # recording but is available on the downsampled reporting tail.
            return Waveform(self.tail_time, self._tail[key], name=f"v({key})")
        raise AnalysisError(f"no recorded signal named {signal!r}")

    def current(self, device_name: str) -> Waveform:
        key = device_name.strip().lower()
        if key not in self._branches:
            raise AnalysisError(f"no recorded branch current for {device_name!r}")
        return Waveform(self.time, self._branches[key], name=f"i({key})", unit="A")

    def __getitem__(self, signal: str) -> Waveform:
        return self.waveform(signal)

    def final_voltages(self) -> dict[str, float]:
        return {name: float(values[-1]) for name, values in self._nodes.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"TransientResult({len(self.time)} points, "
                f"{len(self._nodes)} nodes)")


class TransientAnalysis:
    """SPICE ``.tran tstep tstop`` equivalent.

    Parameters
    ----------
    circuit:
        Circuit to simulate.
    tstop:
        Final time [s].
    tstep:
        Print (output) interval [s].
    use_ic:
        Skip the DC operating point and start from the supplied
        ``initial_conditions`` (defaulting to 0 V everywhere), mirroring the
        SPICE ``UIC`` keyword.  This is how the paper's VCO simulations are
        started ("after the activation of the supply voltage").
    initial_conditions:
        Mapping node name -> initial voltage, honoured when ``use_ic`` is
        set.
    solver_backend:
        Linear-solver backend selection: ``"auto"`` (default, by matrix
        size), ``"dense"`` or ``"sparse"``; see
        :mod:`repro.spice.analysis.backends`.  The backend actually used is
        recorded in ``TransientResult.stats["solver_backend"]``.
    record_nodes:
        ``None`` (default) records every node and — subject to
        ``record_currents`` — every branch current, materialising the full
        unknowns × time trace matrix.  A sequence of node names switches to
        *observed-node streaming*: only those nodes are recorded at print
        resolution, cutting trace memory from ``O(size × points)`` to
        ``O(observed × points)`` (the campaign layer uses this for its
        comparator nodes).  Unknown node names raise
        :class:`~repro.errors.AnalysisError` up front.
    tail_downsample:
        Opt-in reporting tail for streaming runs: when ``record_nodes`` is
        given and this is > 0, *all* node voltages are additionally kept at
        every ``tail_downsample``-th print point (plus the final one),
        retrievable through :meth:`TransientResult.waveform` at the reduced
        resolution.  Ignored when ``record_nodes`` is ``None``.
    timestep:
        Timestep-control policy: a :class:`TransientOptions` instance, a
        mode string (``"fixed"``/``"adaptive"``) as a shorthand for
        ``TransientOptions(mode=...)``, or ``None`` for the fixed-step
        default.  See ``docs/integration.md``.

    Fully linear circuits (R/C/L plus independent and linear controlled
    sources) bypass Newton iteration entirely: each distinct internal step
    size is factorised once and the factors (LAPACK LU or SuperLU,
    depending on the backend) are reused across all timesteps taken with
    that step size.
    """

    def __init__(self, circuit: Circuit, tstop: float, tstep: float,
                 options: SimulationOptions | None = None,
                 use_ic: bool = False,
                 initial_conditions: dict[str, float] | None = None,
                 record_currents: bool = True,
                 solver_backend: str | None = None,
                 record_nodes=None,
                 tail_downsample: int = 0,
                 timestep: TransientOptions | str | None = None):
        if tstop <= 0.0 or tstep <= 0.0:
            raise AnalysisError("tstop and tstep must be positive")
        if tstep > tstop:
            raise AnalysisError("tstep must not exceed tstop")
        if tail_downsample < 0:
            raise AnalysisError("tail_downsample must be >= 0")
        self.circuit = circuit
        self.tstop = float(tstop)
        self.tstep = float(tstep)
        self.options = options or SimulationOptions()
        self.use_ic = use_ic
        self.initial_conditions = dict(initial_conditions or {})
        self.record_currents = record_currents
        self.solver_backend = solver_backend
        self.record_nodes = (None if record_nodes is None
                             else tuple(record_nodes))
        self.tail_downsample = int(tail_downsample)
        if timestep is None:
            timestep = TransientOptions()
        elif isinstance(timestep, str):
            timestep = TransientOptions(mode=timestep)
        timestep.validate()
        self.timestep = timestep

    # ------------------------------------------------------------------
    def _initial_solution(self, builder: MNABuilder) -> np.ndarray:
        if self.use_ic:
            x0 = np.zeros(builder.size)
            # Device-level initial conditions (e.g. ``ic=`` on capacitors
            # with a grounded negative terminal) seed the node voltages.
            for device in builder.devices:
                initial = getattr(device, "initial_voltage", None)
                if initial is None:
                    continue
                pos, neg = device.nodes[0], device.nodes[1]
                if neg == GROUND and pos in builder.node_index:
                    x0[builder.node_index[pos]] = float(initial)
            for node, value in self.initial_conditions.items():
                node = normalize_node(node)
                if node in builder.node_index:
                    x0[builder.node_index[node]] = float(value)
            return x0
        return solve_operating_point(builder, self.initial_conditions or None)

    def print_grid(self) -> np.ndarray:
        """The output time points: multiples of ``tstep`` with the final
        point clamped to ``tstop``.

        A ``tstop`` that is not an integer multiple of ``tstep`` gets an
        extra final point at exactly ``tstop`` (the previous behaviour
        rounded the point count and could silently stop short of ``tstop``,
        flipping detection verdicts near the end of a test).
        """
        # The small relative fudge absorbs binary floating-point error in
        # tstop/tstep (e.g. 4e-6/1e-8 = 399.99999999999994).
        ratio = self.tstop / self.tstep
        num_full = int(math.floor(ratio + 1e-9))
        if num_full + 2 > MAX_PRINT_POINTS:
            raise AnalysisError(
                f"transient print grid would need {num_full + 1} points "
                f"(tstop={self.tstop:g}, tstep={self.tstep:g}); "
                f"the limit is {MAX_PRINT_POINTS}")
        times = self.tstep * np.arange(num_full + 1)
        remainder = self.tstop - float(times[-1])
        if remainder > 1e-9 * self.tstep:
            if remainder < self.tstep * self.options.min_step_fraction:
                warnings.warn(
                    f"tstop={self.tstop:g} leaves a final print interval of "
                    f"{remainder:g}s, far below tstep={self.tstep:g}; "
                    "the grid is pathological and the last step may not "
                    "converge", stacklevel=2)
            times = np.append(times, self.tstop)
        else:
            # Integer ratio up to floating-point drift: land exactly on tstop.
            times[-1] = self.tstop
        return times

    def run(self) -> TransientResult:
        run = TransientRun(self)
        while run.advance():
            pass
        return run.finish()

    def start(self) -> "TransientRun":
        """Begin an incrementally drivable run (see :class:`TransientRun`).

        ``run()`` is exactly ``start()`` driven to completion, so a caller
        advancing the returned object print interval by print interval (the
        batched campaign driver does) performs the same arithmetic in the
        same order as a plain ``run()``.
        """
        return TransientRun(self)

    # ------------------------------------------------------------------
    # Timestep drivers
    # ------------------------------------------------------------------
    def _dt_floor(self) -> float:
        """Hard floor on the internal step [s] (the ``dt_min`` knob)."""
        if self.timestep.dt_min is not None:
            return self.timestep.dt_min
        return self.tstep * self.options.min_step_fraction

    # ------------------------------------------------------------------
    # LTE estimator helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _predict(history_t: list[float], history_x: list[np.ndarray],
                 t_new: float, order: int) -> np.ndarray | None:
        """Divided-difference (Newton polynomial) predictor at ``t_new``.

        Extrapolates the accepted state history: linear through the last
        two points for backward Euler (order 1), quadratic through the
        last three for trapezoidal (order 2).  Returns ``None`` while the
        history is too short, which disables LTE control for that step.
        """
        needed = order + 1
        if len(history_t) < needed:
            return None
        ts = history_t[-needed:]
        xs = history_x[-needed:]
        if order == 1:
            (t0, t1), (x0, x1) = ts, xs
            slope = (x1 - x0) / (t1 - t0)
            return x1 + slope * (t_new - t1)
        (t0, t1, t2), (x0, x1, x2) = ts, xs
        d01 = (x1 - x0) / (t1 - t0)
        d12 = (x2 - x1) / (t2 - t1)
        d012 = (d12 - d01) / (t2 - t0)
        return x2 + d12 * (t_new - t2) + d012 * (t_new - t2) * (t_new - t1)

    def _lte_ratio(self, corrected: np.ndarray, predicted: np.ndarray,
                   previous: np.ndarray, builder: MNABuilder,
                   history_t: list[float], dt: float, order: int) -> float:
        """Worst per-node ratio of estimated LTE to tolerance.

        The corrector-minus-predictor difference is proportional to the
        method's local truncation error; the proportionality constant
        follows from the error terms of both polynomials over the actual
        (non-uniform) step history:

        * trapezoidal: ``LTE = h^2 / (h^2 + 2(h+h1)(h+h1+h2)) * |x_c-x_p|``
        * backward Euler: ``LTE = h / (2h + h1) * |x_c - x_p|``

        where ``h`` is the present step and ``h1``/``h2`` the previous
        ones.  Only node-voltage rows are tested (per-node control);
        branch currents follow the nodes they connect.
        """
        topts = self.timestep
        if order == 2:
            h1 = history_t[-1] - history_t[-2]
            h2 = history_t[-2] - history_t[-3]
            coefficient = dt * dt / (dt * dt
                                     + 2.0 * (dt + h1) * (dt + h1 + h2))
        else:
            h1 = history_t[-1] - history_t[-2]
            coefficient = dt / (2.0 * dt + h1)
        nodes = builder.num_nodes
        if nodes == 0:
            return 0.0
        error = coefficient * np.abs(corrected[:nodes] - predicted[:nodes])
        reference = np.maximum(np.abs(corrected[:nodes]),
                               np.abs(previous[:nodes]))
        tolerance = topts.lte_reltol * reference + topts.lte_abstol
        return float(np.max(error / tolerance))

    @staticmethod
    def _interpolate(history_t: list[float], history_x: list[np.ndarray],
                     t_new: float, x_new: np.ndarray,
                     t_out: float) -> np.ndarray:
        """Dense output inside the accepted step ``(history tail, t_new]``.

        Quadratic through the last two accepted history points and the new
        endpoint (matching the trapezoidal order); linear when only one
        history point exists yet.
        """
        t1 = history_t[-1]
        x1 = history_x[-1]
        if len(history_t) < 2:
            weight = (t_out - t1) / (t_new - t1)
            return x1 + weight * (x_new - x1)
        t0 = history_t[-2]
        x0 = history_x[-2]
        d01 = (x1 - x0) / (t1 - t0)
        d12 = (x_new - x1) / (t_new - t1)
        d012 = (d12 - d01) / (t_new - t0)
        return x1 + d01 * (t_out - t1) + d012 * (t_out - t1) * (t_out - t0)

    def _recorded_columns(self, builder: MNABuilder):
        """Resolve ``record_nodes`` to ``(column indices, [(name,
        is_branch)])`` or ``None`` for full recording.

        Names resolve against the node index first, then against device
        branch currents (so a campaign observing a source current keeps
        working under streaming).  Ground is dropped silently (it is
        synthesised by :meth:`TransientResult.waveform`); any other unknown
        signal is an error now rather than after the whole run.
        """
        if self.record_nodes is None:
            return None
        branch_columns = {device.name.lower(): device.branch_index
                          for device in builder.devices
                          if device.branch_count() > 0}
        indices: list[int] = []
        names: list[tuple[str, bool]] = []
        seen: set[str] = set()
        for node in self.record_nodes:
            key = normalize_node(str(node))
            if key == GROUND or key in seen:
                continue
            if key in builder.node_index:
                indices.append(builder.node_index[key])
                names.append((key, False))
            elif key in branch_columns:
                indices.append(branch_columns[key])
                names.append((key, True))
            else:
                raise AnalysisError(
                    f"record_nodes names unknown signal {node!r} "
                    f"(circuit has {len(builder.node_index)} nodes)")
            seen.add(key)
        return np.asarray(indices, dtype=int), names

    # ------------------------------------------------------------------
    def _solve_linear_step(self, builder: MNABuilder, state: SimState,
                           lu_cache: _LRUCache) -> None:
        """Advance a fully linear circuit by one sub-step.

        The MNA matrix of a linear circuit depends only on the integration
        coefficients (and gmin), not on time or the solution, so each
        distinct step size is factorised once — through the backend's
        :meth:`freeze_solver` (dense LAPACK LU or sparse SuperLU) — and the
        factors are reused for every timestep taken with that ``dt``.  The
        cache is bounded: the adaptive driver produces a changing (but,
        thanks to step quantisation, mostly recurring) set of step sizes,
        and least recently used factorisations are evicted beyond
        ``TransientOptions.solver_cache_size``.
        """
        base = builder.assemble_constant(state)
        key = (state.integ_c0, state.integ_c1, state.gmin)
        solver = lu_cache.get(key)
        if solver is None:
            solver = base.freeze_solver()
            lu_cache.put(key, solver)
        state.x = solver(base.rhs)


class TransientRun:
    """One transient analysis, drivable print interval by print interval.

    ``TransientAnalysis.run()`` is literally this object driven to
    completion, so advancing several ``TransientRun`` instances in lockstep
    (the batched fault-campaign driver of
    :mod:`repro.spice.analysis.batched`) performs per-variant arithmetic
    that is operation-for-operation identical to running each analysis
    serially — the foundation of the batched-vs-serial differential
    guarantee.

    Construction solves the initial state and allocates the output buffers;
    :meth:`advance` integrates up to the next print point and records it;
    :meth:`finish` assembles the :class:`TransientResult`.  ``finish`` may
    be called before the grid is exhausted (rows past the cursor stay
    zero), which is how early-aborted batch variants surface their partial
    statistics.

    ``mode="adaptive"`` integrates on its own internal grid and fills print
    points by interpolation, so one :meth:`advance` takes accepted steps
    until *at least one* new print row has been produced — a single call
    may emit several rows (a large step interpolating across many print
    intervals) and :attr:`output_index` jumps accordingly.  Lockstep
    drivers must therefore only advance a run whose ``output_index`` has
    not yet passed the row they are about to read.
    """

    def __init__(self, analysis: TransientAnalysis):
        """Solve the initial state of ``analysis`` and allocate buffers."""
        self.analysis = analysis
        builder = MNABuilder(analysis.circuit, analysis.options,
                             solver_backend=analysis.solver_backend)
        self.builder = builder

        x0 = analysis._initial_solution(builder)
        state = builder.new_state("tran")
        state.use_ic = analysis.use_ic
        state.x = x0.copy()
        state.time = 0.0
        for device in builder.devices:
            device.init_state(state)
        self.state = state

        self.times = analysis.print_grid()
        num_outputs = len(self.times)
        select = analysis._recorded_columns(builder)
        self._select = select
        if select is None:
            # One row per print point; node/branch traces are column views.
            self.data = np.zeros((num_outputs, builder.size))
        else:
            # Observed-node streaming: keep only the selected columns.
            self.data = np.zeros((num_outputs, len(select[0])))
        self._tail_rows: dict[int, int] = {}
        self._tail_data = None
        if select is not None and analysis.tail_downsample > 0:
            # Downsampled full-width tail for reporting: every Nth print
            # point plus the final one.
            rows = list(range(0, num_outputs, analysis.tail_downsample))
            if rows[-1] != num_outputs - 1:
                rows.append(num_outputs - 1)
            self._tail_rows = {print_index: row for row, print_index in
                               enumerate(rows)}
            self._tail_data = np.zeros((len(rows), builder.size))
            self._tail_data[0] = state.x
        self.data[0] = state.x if select is None else state.x[select[0]]

        #: Optional shared-numerics hook consulted on linear solver-cache
        #: misses: ``hook(builder, base_system, key)`` returns a frozen
        #: solver (e.g. a Woodbury update of the nominal factorisation) or
        #: ``None`` to fall back to the variant's own factorisation.
        self.solver_hook = None
        #: Number of linear solves served by a hook-provided shared solver.
        self.solves_shared = 0

        topts = analysis.timestep
        self._adaptive = topts.mode == "adaptive"
        integration = analysis.options.integration.lower()
        self._use_trap = integration.startswith("trap")
        #: Order ceiling by method ladder: "trap" (default) runs
        #: BE/trap/BDF-3..5, "gear"/"bdf" runs BE/BDF-2..5, anything else
        #: ("be") is pinned to backward Euler as it always was.
        if self._use_trap or integration in ("gear", "bdf"):
            self._max_order = topts.max_order
        else:
            self._max_order = 1
        self._min_order = min(topts.min_order, self._max_order)
        self._min_step = analysis._dt_floor()
        self._step = analysis.tstep
        self._first_step_done = False
        self._linear = builder.is_linear
        self._lu_cache = _LRUCache(topts.solver_cache_size)
        self._newton_iterations = 0
        self._accepted_steps = 0
        self._rejected_steps = 0
        self._dt_smallest = math.inf
        self._dt_largest = 0.0
        self._output_index = 1
        # --- adaptive-driver state (untouched in fixed mode) ---
        tstop = float(self.times[-1])
        self._tstop = tstop
        self._eps = 1e-12 * max(analysis.tstep, tstop)
        dt_cap = topts.dt_max if topts.dt_max is not None \
            else 8.0 * analysis.tstep
        self._dt_cap = max(dt_cap, self._min_step)
        #: Accepted state history (time-ascending, most recent last).  The
        #: capacity covers the highest-order predictor (max_order+1 points)
        #: plus one extra point for the raise-order error estimate.
        self._history_cap = self._max_order + 2
        self._history_t: list[float] = [0.0]
        self._history_x: list[np.ndarray] = [state.x.copy()]
        if self._adaptive:
            if topts.dt_initial is not None:
                step = topts.dt_initial
            else:
                step = analysis.tstep * analysis.options.min_step_fraction
            self._step = min(max(step, self._min_step), self._dt_cap)
        self._last_ratio = 0.0
        #: Order the controller wants next (effective order additionally
        #: ramps with the available history).
        self._desired_order = max(min(2, self._max_order), self._min_order)
        #: Accepted steps to wait before the next order change is allowed.
        self._order_hold = 0
        self._lte_rejects_in_row = 0
        self._steps_since_grow = 0
        self._last_accepted_dt: float | None = None
        # Telemetry: accepted steps and accumulated step size per order,
        # plus the number of order transitions between accepted steps.
        self._order_counts: dict[int, int] = {}
        self._order_dt_sum: dict[int, float] = {}
        self._order_changes = 0
        self._last_order: int | None = None

    # ------------------------------------------------------------------
    @property
    def output_index(self) -> int:
        """Index of the next print row to be produced by :meth:`advance`."""
        return self._output_index

    @property
    def exhausted(self) -> bool:
        """True once every print row has been produced."""
        return self._output_index >= len(self.times)

    def signal_column(self, signal: str) -> int | None:
        """Column of ``signal`` in :attr:`data` rows, ``None`` for ground.

        Resolves node names first, then device branch currents — the same
        lookup order as :meth:`TransientAnalysis._recorded_columns` and
        :meth:`TransientResult.waveform`, so a streaming batch driver reads
        exactly the samples a serial run would hand the comparator.
        """
        key = normalize_node(str(signal))
        if key == GROUND:
            return None
        if self._select is not None:
            for column, (name, _is_branch) in enumerate(self._select[1]):
                if name == key:
                    return column
            raise AnalysisError(
                f"signal {signal!r} is not among the recorded columns")
        if key in self.builder.node_index:
            return self.builder.node_index[key]
        for device in self.builder.devices:
            if device.name.lower() == key and device.branch_count() > 0:
                return device.branch_index
        raise AnalysisError(
            f"signal {signal!r} matches no node or branch current")

    # ------------------------------------------------------------------
    def _write(self, output_index: int, x: np.ndarray) -> None:
        self.data[output_index] = x if self._select is None else \
            x[self._select[0]]
        if self._tail_data is not None and output_index in self._tail_rows:
            self._tail_data[self._tail_rows[output_index]] = x

    def advance(self) -> bool:
        """Integrate to the next print point and record its row.

        Returns ``True`` while further print rows remain (call again),
        ``False`` once the grid is exhausted.  Raises
        :class:`TransientError` (or :class:`SingularMatrixError` /
        :class:`ConvergenceError` from deeper layers) exactly as the
        one-shot ``run()`` would; the run is dead afterwards.
        """
        if self._output_index >= len(self.times):
            return False
        if self._adaptive:
            self._advance_adaptive()
        else:
            self._advance_fixed()
            self._write(self._output_index, self.state.x)
            self._output_index += 1
        return self._output_index < len(self.times)

    # ------------------------------------------------------------------
    # Adaptive (LTE-controlled, variable-order) driver
    # ------------------------------------------------------------------
    def _effective_order(self) -> int:
        """Order actually run next, ramping with the available history.

        Trap (order 2) needs two accepted points; BDF-k needs ``k+1`` for
        its predictor polynomial.  The very first step is always backward
        Euler (it damps the inconsistent initial derivative), exactly as
        the legacy driver took it.
        """
        if not self._first_step_done:
            return 1
        avail = len(self._history_t)
        k = min(max(self._desired_order, self._min_order), self._max_order)
        while k > 1 and avail < self._min_history(k):
            k -= 1
        return k

    def _min_history(self, order: int) -> int:
        """Accepted history points required to run at ``order``."""
        if order == 2 and self._use_trap:
            return 2
        return order + 1

    def _method_for(self, order: int) -> str:
        """Integration method implementing ``order``: be / trap / bdf."""
        if order == 1:
            return "be"
        if order == 2 and self._use_trap:
            return "trap"
        return "bdf"

    def _cap_order(self, ceiling: int) -> None:
        """Clamp the desired order (history invalidation heuristics)."""
        ceiling = max(ceiling, self._min_order)
        if self._desired_order > ceiling:
            self._desired_order = ceiling
            self._order_hold = 2

    def _record_order(self, order: int, dt: float) -> None:
        self._order_counts[order] = self._order_counts.get(order, 0) + 1
        self._order_dt_sum[order] = self._order_dt_sum.get(order, 0.0) + dt
        if self._last_order is not None and order != self._last_order:
            self._order_changes += 1
        self._last_order = order

    def _divided_difference(self, m: int) -> np.ndarray:
        """Order-``m`` divided difference over the newest ``m+1`` accepted
        points (an estimate of ``x^(m)/m!`` used by the order selector)."""
        ts = self._history_t[-(m + 1):]
        table = [x for x in self._history_x[-(m + 1):]]
        for level in range(1, m + 1):
            for i in range(m - level + 1):
                table[i] = ((table[i + 1] - table[i])
                            / (ts[i + level] - ts[i]))
        return table[0]

    def _predictor_poly(self, order: int,
                        t_new: float) -> tuple[np.ndarray, np.ndarray]:
        """Value and derivative at ``t_new`` of the degree-``order`` Newton
        polynomial through the newest ``order+1`` accepted points."""
        n = order + 1
        ts = self._history_t[-n:]
        coeffs = [x for x in self._history_x[-n:]]
        for level in range(1, n):
            for i in range(n - 1, level - 1, -1):
                coeffs[i] = ((coeffs[i] - coeffs[i - 1])
                             / (ts[i] - ts[i - level]))
        value = coeffs[-1].copy()
        deriv = np.zeros_like(value)
        for i in range(n - 2, -1, -1):
            span = t_new - ts[i]
            deriv = deriv * span + value
            value = value * span + coeffs[i]
        return value, deriv

    def _lte_ratio_bdf(self, corrected: np.ndarray, predicted: np.ndarray,
                       previous: np.ndarray, dt: float, order: int) -> float:
        """BDF-``order`` counterpart of the trap/BE corrector-predictor
        LTE estimate (same tolerance semantics, generalized coefficient).

        The predictor misses the true solution by the interpolation
        remainder ``x^(k+1)/(k+1)! * prod(t_n - t_hist)`` while the
        corrector's LTE is ``h^(k+1)/((k+1)*alpha_s(k)) * x^(k+1)``, so
        the LTE is the corrector-predictor difference scaled by
        ``num / (prod/(k+1)! + num)`` — which reduces exactly to the
        legacy BE/trap coefficients at orders 1/2.
        """
        topts = self.analysis.timestep
        t_new = self.state.time
        prod = 1.0
        for i in range(1, order + 2):
            prod *= t_new - self._history_t[-i]
        num = dt ** (order + 1) / ((order + 1) * _ALPHA_S[order])
        coefficient = num / (prod / math.factorial(order + 1) + num)
        nodes = self.builder.num_nodes
        if nodes == 0:
            return 0.0
        error = coefficient * np.abs(corrected[:nodes] - predicted[:nodes])
        reference = np.maximum(np.abs(corrected[:nodes]),
                               np.abs(previous[:nodes]))
        tolerance = topts.lte_reltol * reference + topts.lte_abstol
        return float(np.max(error / tolerance))

    def _order_eta(self, order: int, dt: float) -> float:
        """Step-growth factor order ``order`` would have allowed for the
        just-accepted step, from divided differences of the history
        (including the new point), clamped to the controller's own
        ``[dt_shrink, dt_grow]`` range.

        The clamp is load-bearing: once a method meets tolerance so
        comfortably that its controller saturates at ``dt_grow``, *every*
        order saturates and the comparison reports a tie — so wide-open
        tolerances (or a step pinned at ``dt_max``) never flap the order.
        """
        topts = self.analysis.timestep
        if len(self._history_t) < order + 2:
            return 0.0
        dd = self._divided_difference(order + 1)
        if order == 1:
            # BE: LTE = h^2/2 * x'' and x'' ~ 2*dd2.
            weight = dt * dt
        elif order == 2 and self._use_trap:
            # trap: LTE = h^3/12 * x''' and x''' ~ 6*dd3.
            weight = dt ** 3 / 2.0
        else:
            # BDF-k: LTE = h^(k+1)/((k+1)*alpha_s) * x^(k+1),
            # x^(k+1) ~ (k+1)! * dd_(k+1).
            weight = dt ** (order + 1) * math.factorial(order) \
                / _ALPHA_S[order]
        nodes = self.builder.num_nodes
        if nodes == 0:
            return topts.dt_grow
        x = self.state.x
        error = weight * np.abs(dd[:nodes])
        tolerance = topts.lte_reltol * np.abs(x[:nodes]) + topts.lte_abstol
        ratio = float(np.max(error / tolerance))
        if ratio <= 0.0:
            return topts.dt_grow
        eta = topts.safety * ratio ** (-1.0 / (order + 1))
        return min(max(eta, topts.dt_shrink), topts.dt_grow)

    #: Advantage factor a neighbouring order must show over the current
    #: one before the controller moves (hysteresis against order flapping).
    ORDER_BIAS = 1.2

    def _consider_order_change(self, order: int, dt: float,
                               clamped: bool) -> None:
        """Pick the order of the next step after an accepted one.

        Raising is only considered when the accepted step ran at the
        controller's own size (neither clamped to a print target/tstop nor
        sitting at ``dt_max`` — a capped step gains nothing from a higher
        order, and the wide-open-tolerance regime keeps its exact legacy
        trap arithmetic this way).
        """
        if self._order_hold > 0:
            self._order_hold -= 1
            return
        eta_keep = self._order_eta(order, dt)
        if eta_keep <= 0.0:
            return
        best_order, best_eta = order, eta_keep
        if order > max(1, self._min_order):
            eta_down = self._order_eta(order - 1, dt)
            if eta_down > best_eta * self.ORDER_BIAS:
                best_order, best_eta = order - 1, eta_down
        can_raise = (not clamped
                     and order < self._max_order
                     and dt < self._dt_cap * (1.0 - 1e-12)
                     and len(self._history_t) >= order + 3)
        if can_raise:
            eta_up = self._order_eta(order + 1, dt)
            if eta_up > best_eta * self.ORDER_BIAS:
                best_order, best_eta = order + 1, eta_up
        if best_order != order:
            self._desired_order = best_order
            self._order_hold = best_order + 1
        else:
            self._desired_order = order

    def _interpolate_output(self, t_out: float, order: int) -> np.ndarray:
        """Dense output at ``t_out`` inside the just-accepted step,
        matching the integration order (legacy quadratic at orders <= 2)."""
        state = self.state
        if order <= 2:
            return TransientAnalysis._interpolate(
                self._history_t, self._history_x, state.time, state.x, t_out)
        points = min(order, len(self._history_t))
        ts = self._history_t[-points:] + [state.time]
        xs = self._history_x[-points:] + [state.x]
        coeffs = list(xs)
        n = len(ts)
        for level in range(1, n):
            for i in range(n - 1, level - 1, -1):
                coeffs[i] = ((coeffs[i] - coeffs[i - 1])
                             / (ts[i] - ts[i - level]))
        value = coeffs[-1].copy()
        for i in range(n - 2, -1, -1):
            value = value * (t_out - ts[i]) + coeffs[i]
        return value

    def _advance_adaptive(self) -> None:
        """Take accepted steps until at least one new print row is emitted.

        This is the legacy one-shot ``_run_adaptive`` loop body made
        incremental (so lockstep batch drivers can interleave variants),
        plus the variable-order machinery: the step attempt consults
        :meth:`_effective_order`, BDF steps publish the predictor
        polynomial to the device stamps through the simulation state, and
        each accepted step lets the order controller reconsider.  At
        orders <= 2 the arithmetic is operation-for-operation the legacy
        trap/BE driver's.
        """
        analysis = self.analysis
        topts = analysis.timestep
        options = analysis.options
        state = self.state
        times = self.times
        tstop = self._tstop
        eps = self._eps
        dt_floor = self._min_step
        emitted = False

        while not emitted and state.time < tstop - eps:
            dt = min(self._step, tstop - state.time)
            if not topts.interpolate_prints and self._output_index < len(times):
                dt = min(dt, times[self._output_index] - state.time)
            clamped = dt < self._step * (1.0 - 1e-12)
            while True:
                order = self._effective_order()
                method = self._method_for(order)
                if method == "bdf":
                    state.integ_c0 = _ALPHA_S[order] / dt
                    state.integ_c1 = 0.0
                    pred_x, pred_dx = self._predictor_poly(
                        order, state.time + dt)
                    state.integ_pred_x = pred_x
                    state.integ_pred_dx = pred_dx
                    predicted = pred_x
                else:
                    state.integ_pred_x = None
                    state.integ_pred_dx = None
                    if method == "trap":
                        state.integ_c0 = 2.0 / dt
                        state.integ_c1 = 1.0
                    else:
                        state.integ_c0 = 1.0 / dt
                        state.integ_c1 = 0.0
                    predicted = TransientAnalysis._predict(
                        self._history_t, self._history_x,
                        state.time + dt, order)
                state.dt = dt
                saved_time = state.time
                saved_x = state.x.copy()
                state.time = saved_time + dt
                try:
                    if self._linear:
                        self._solve_linear_step()
                        self._newton_iterations += 1
                    else:
                        guess = saved_x
                        if topts.predictor_guess and predicted is not None:
                            guess = predicted
                        solve_newton(self.builder, state, x0=guess,
                                     max_iterations=options.itl4)
                        self._newton_iterations += \
                            state.last_newton_iterations
                except (ConvergenceError, SingularMatrixError) as exc:
                    state.time = saved_time
                    state.x = saved_x
                    self._rejected_steps += 1
                    # A Newton failure usually marks a discontinuity; the
                    # polynomial history across it is worthless, so drop
                    # back to the legacy pair while re-trying smaller.
                    self._cap_order(2 if self._use_trap else 1)
                    if dt <= dt_floor * (1.0 + 1e-9):
                        raise TransientError(
                            f"adaptive transient step hit the dt_min="
                            f"{dt_floor:g}s floor at t={saved_time:g}s "
                            f"(last LTE ratio {self._last_ratio:.3g}, {exc})"
                            ) from exc
                    dt = max(0.5 * dt, dt_floor)
                    self._step = dt
                    clamped = False
                    continue
                ratio = 0.0
                if predicted is not None:
                    if method == "bdf":
                        ratio = self._lte_ratio_bdf(state.x, predicted,
                                                    saved_x, dt, order)
                    else:
                        ratio = analysis._lte_ratio(
                            state.x, predicted, saved_x, self.builder,
                            self._history_t, dt, order)
                    self._last_ratio = ratio
                if ratio > 1.0:
                    if dt <= dt_floor * (1.0 + 1e-9):
                        # The floor forbids further refinement; accept the
                        # step rather than looping forever (the tolerance
                        # is advisory at the floor, and matches SPICE
                        # practice of integrating through discontinuities
                        # at the minimum step).
                        break
                    state.time = saved_time
                    state.x = saved_x
                    self._rejected_steps += 1
                    self._lte_rejects_in_row += 1
                    if self._lte_rejects_in_row >= 2:
                        # Repeated LTE rejects mean the high-order history
                        # no longer describes the waveform (sharp edge).
                        self._cap_order(2 if self._use_trap else 1)
                    shrink = topts.safety * ratio ** (-1.0 / (order + 1))
                    shrink = min(max(shrink, topts.dt_shrink), 0.5)
                    dt = max(dt * shrink, dt_floor)
                    if topts.quantize_steps:
                        dt = max(quantize_step(dt, analysis.tstep), dt_floor)
                    self._step = dt
                    clamped = False
                    continue
                break

            self.builder.accept_timestep(state)
            state.integ_pred_x = None
            state.integ_pred_dx = None
            self._first_step_done = True
            self._lte_rejects_in_row = 0
            if (self._last_accepted_dt is not None
                    and dt > self._last_accepted_dt * (1.0 + 1e-12)):
                self._steps_since_grow = 0
            else:
                self._steps_since_grow += 1
            self._last_accepted_dt = dt
            self._accepted_steps += 1
            self._dt_smallest = min(self._dt_smallest, dt)
            self._dt_largest = max(self._dt_largest, dt)
            self._record_order(order, dt)

            # Print points covered by this step: interpolate (or copy the
            # endpoint when the step landed on one).
            while (self._output_index < len(times)
                   and times[self._output_index] <= state.time + eps):
                t_out = times[self._output_index]
                if t_out >= state.time - eps:
                    self._write(self._output_index, state.x)
                else:
                    self._write(self._output_index,
                                self._interpolate_output(t_out, order))
                self._output_index += 1
                emitted = True

            self._history_t.append(state.time)
            self._history_x.append(state.x.copy())
            if len(self._history_t) > self._history_cap:
                self._history_t.pop(0)
                self._history_x.pop(0)

            # Step-size controller for the next step.
            if ratio > 0.0:
                grow = topts.safety * ratio ** (-1.0 / (order + 1))
                grow = min(max(grow, topts.dt_shrink), topts.dt_grow)
            else:
                grow = topts.dt_grow
            candidate = min(max(dt * grow, dt_floor), self._dt_cap)
            if topts.quantize_steps:
                candidate = max(quantize_step(candidate, analysis.tstep),
                                dt_floor)
            if order >= 3 and candidate > dt * (1.0 + 1e-12):
                # High-order growth gate (see _BDF_GROW_HOLD): one ladder
                # rung at a time, spaced by enough uniform steps.
                if self._steps_since_grow < _BDF_GROW_HOLD[order]:
                    candidate = dt
                else:
                    candidate = min(candidate, _BDF_GROW_CAP * dt)
                    if topts.quantize_steps:
                        candidate = max(
                            quantize_step(candidate, analysis.tstep),
                            dt_floor)
            if clamped:
                # A step clamped to tstop/a print target says nothing about
                # accuracy at the controller's own size; never shrink below
                # the standing step because of it.
                self._step = max(self._step, candidate)
            else:
                self._step = candidate
            self._consider_order_change(order, dt, clamped)

        # The final accepted step lands on ``tstop`` within ``eps``, so
        # every output row has normally been emitted; flush any stragglers
        # (float pathology) with the final state rather than leaving zeros.
        if state.time >= tstop - eps:
            while self._output_index < len(times):
                self._write(self._output_index, state.x)
                self._output_index += 1

    def _advance_fixed(self) -> None:
        """One print interval of the legacy fixed-step driver.

        This is the historical ``_run_fixed`` loop body, verbatim: one
        internal sub-step per print interval, halved on Newton failure and
        grown back gently.  Deliberately bit-identical to the historical
        behaviour (campaign checkpoints rely on it).
        """
        analysis = self.analysis
        options = analysis.options
        state = self.state
        target = self.times[self._output_index]
        while state.time < target - 1e-18 * max(1.0, target):
            # The actual sub-step is the adaptive step clamped to the
            # print target; ``step`` itself keeps the adaptive history so
            # that a tiny clamped final sub-step cannot distort the
            # accepted-step recovery below.
            dt = min(self._step, target - state.time)
            accepted = False
            while not accepted:
                # Integration coefficients: backward Euler for the very
                # first step (damps the inconsistent initial derivative),
                # trapezoidal afterwards if requested.
                if self._use_trap and self._first_step_done:
                    order_used = 2
                    state.integ_c0 = 2.0 / dt
                    state.integ_c1 = 1.0
                else:
                    order_used = 1
                    state.integ_c0 = 1.0 / dt
                    state.integ_c1 = 0.0
                state.dt = dt
                saved_x = state.x.copy()
                state.time += dt
                try:
                    if self._linear:
                        self._solve_linear_step()
                        self._newton_iterations += 1
                    else:
                        solve_newton(self.builder, state, x0=saved_x,
                                     max_iterations=options.itl4)
                        self._newton_iterations += \
                            state.last_newton_iterations
                    accepted = True
                except (ConvergenceError, SingularMatrixError) as exc:
                    # Reject: restore and halve the sub-step; the
                    # adaptive step follows the rejection.
                    state.time -= dt
                    state.x = saved_x
                    self._rejected_steps += 1
                    dt *= 0.5
                    self._step = dt
                    if dt < self._min_step:
                        raise TransientError(
                            f"transient step fell below dt_min="
                            f"{self._min_step:g}s at t={state.time:g}s "
                            f"({exc})") from exc
            self.builder.accept_timestep(state)
            self._first_step_done = True
            self._accepted_steps += 1
            self._dt_smallest = min(self._dt_smallest, dt)
            self._dt_largest = max(self._dt_largest, dt)
            self._record_order(order_used, dt)
            # Gentle step recovery towards the print interval, driven
            # only by genuinely accepted adaptive steps (a clamped final
            # sub-step leaves the adaptive step untouched).
            if dt >= self._step and self._step < analysis.tstep:
                self._step = min(self._step * 2.0, analysis.tstep)

    def _solve_linear_step(self) -> None:
        """Linear sub-step through the per-run factorisation cache.

        Same contract as :meth:`TransientAnalysis._solve_linear_step`,
        with one extension: on a cache miss :attr:`solver_hook` (when set)
        may supply a shared solver — a nominal factorisation plus low-rank
        update — instead of factorising this variant's own matrix.
        """
        state = self.state
        base = self.builder.assemble_constant(state)
        key = (state.integ_c0, state.integ_c1, state.gmin)
        solver = self._lu_cache.get(key)
        if solver is None:
            if self.solver_hook is not None:
                shared = self.solver_hook(self.builder, base, key)
                if shared is not None:
                    def solver(rhs, _shared=shared):
                        self.solves_shared += 1
                        return _shared(rhs)
            if solver is None:
                solver = base.freeze_solver()
            self._lu_cache.put(key, solver)
        state.x = solver(base.rhs)

    # ------------------------------------------------------------------
    def finish(self) -> TransientResult:
        """Assemble the :class:`TransientResult` from the recorded rows."""
        analysis = self.analysis
        builder = self.builder
        data = self.data
        select = self._select
        times = self.times
        tail_data = self._tail_data
        tail_rows = self._tail_rows

        if select is None:
            node_traces = {name: data[:, index]
                           for name, index in builder.node_index.items()}
            branch_traces = {}
            if analysis.record_currents:
                branch_traces = {device.name.lower():
                                 data[:, device.branch_index]
                                 for device in builder.devices
                                 if device.branch_count() > 0}
        else:
            node_traces = {}
            branch_traces = {}
            for column, (name, is_branch) in enumerate(select[1]):
                target = branch_traces if is_branch else node_traces
                target[name] = data[:, column]
        tail_time = None
        tail_traces = None
        if tail_data is not None:
            tail_time = times[sorted(tail_rows)]
            tail_traces = {name: tail_data[:, index]
                           for name, index in builder.node_index.items()
                           if name not in node_traces}

        counters = {
            "newton_iterations": self._newton_iterations,
            "steps_accepted": self._accepted_steps,
            "steps_rejected": self._rejected_steps,
            "dt_min": (0.0 if self._accepted_steps == 0
                       else self._dt_smallest),
            "dt_max": self._dt_largest,
            # Order telemetry (str keys so the dicts survive a JSON
            # checkpoint round-trip unchanged): accepted steps per
            # integration order, mean accepted step size per order, and
            # how often consecutive accepted steps changed order.
            "order_histogram": {str(order): count for order, count
                                in sorted(self._order_counts.items())},
            "steps_per_order": {
                str(order): self._order_dt_sum[order] / count
                for order, count in sorted(self._order_counts.items())},
            "order_changes": self._order_changes,
        }
        stats = {
            "linear_bypass": builder.is_linear,
            "solver_backend": builder.backend.name,
            "matrix_size": builder.size,
            "timestep_mode": analysis.timestep.mode,
            "recorded_nodes": (data.shape[1] if select is not None
                               else len(builder.node_index)),
            "trace_bytes": int(data.nbytes) + (0 if tail_data is None
                                               else int(tail_data.nbytes)),
        }
        stats.update(counters)
        # ``steps_accepted``/``steps_rejected`` are the documented telemetry
        # names; the historical ``accepted_steps``/``rejected_steps`` keys
        # are kept as aliases for existing consumers.
        stats["accepted_steps"] = stats["steps_accepted"]
        stats["rejected_steps"] = stats["steps_rejected"]
        return TransientResult(times, node_traces, branch_traces, stats=stats,
                               tail_time=tail_time, tail_traces=tail_traces)
