"""Transient analysis with fixed print step and adaptive internal stepping."""

from __future__ import annotations

import numpy as np

from ...errors import AnalysisError, ConvergenceError, SingularMatrixError
from ..netlist import Circuit, normalize_node, GROUND
from ..waveform import Waveform
from .dc import solve_operating_point
from .mna import MNABuilder, SimState, SimulationOptions
from .newton import solve_newton


class TransientResult:
    """Node voltages versus time.

    Signals can be read with ``result["11"]``, ``result["v(11)"]`` or
    :meth:`waveform`, all returning :class:`~repro.spice.waveform.Waveform`
    objects.
    """

    def __init__(self, time: np.ndarray, node_traces: dict[str, np.ndarray],
                 branch_traces: dict[str, np.ndarray] | None = None):
        self.time = np.asarray(time, dtype=float)
        self._nodes = node_traces
        self._branches = branch_traces or {}

    @staticmethod
    def _canonical(signal: str) -> str:
        text = signal.strip().lower()
        if text.startswith("v(") and text.endswith(")"):
            text = text[2:-1]
        return normalize_node(text)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def waveform(self, signal: str) -> Waveform:
        key = self._canonical(signal)
        if key == GROUND:
            return Waveform(self.time, np.zeros_like(self.time), name="v(0)")
        if key in self._nodes:
            return Waveform(self.time, self._nodes[key], name=f"v({key})")
        if key in self._branches:
            return Waveform(self.time, self._branches[key], name=f"i({key})",
                            unit="A")
        raise AnalysisError(f"no recorded signal named {signal!r}")

    def current(self, device_name: str) -> Waveform:
        key = device_name.strip().lower()
        if key not in self._branches:
            raise AnalysisError(f"no recorded branch current for {device_name!r}")
        return Waveform(self.time, self._branches[key], name=f"i({key})", unit="A")

    def __getitem__(self, signal: str) -> Waveform:
        return self.waveform(signal)

    def final_voltages(self) -> dict[str, float]:
        return {name: float(values[-1]) for name, values in self._nodes.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"TransientResult({len(self.time)} points, "
                f"{len(self._nodes)} nodes)")


class TransientAnalysis:
    """SPICE ``.tran tstep tstop`` equivalent.

    Parameters
    ----------
    circuit:
        Circuit to simulate.
    tstop:
        Final time [s].
    tstep:
        Print (output) interval [s].
    use_ic:
        Skip the DC operating point and start from the supplied
        ``initial_conditions`` (defaulting to 0 V everywhere), mirroring the
        SPICE ``UIC`` keyword.  This is how the paper's VCO simulations are
        started ("after the activation of the supply voltage").
    initial_conditions:
        Mapping node name -> initial voltage, honoured when ``use_ic`` is
        set.
    """

    def __init__(self, circuit: Circuit, tstop: float, tstep: float,
                 options: SimulationOptions | None = None,
                 use_ic: bool = False,
                 initial_conditions: dict[str, float] | None = None,
                 record_currents: bool = True):
        if tstop <= 0.0 or tstep <= 0.0:
            raise AnalysisError("tstop and tstep must be positive")
        if tstep > tstop:
            raise AnalysisError("tstep must not exceed tstop")
        self.circuit = circuit
        self.tstop = float(tstop)
        self.tstep = float(tstep)
        self.options = options or SimulationOptions()
        self.use_ic = use_ic
        self.initial_conditions = dict(initial_conditions or {})
        self.record_currents = record_currents
        #: Number of Newton iterations spent in the last run (workload metric).
        self.total_newton_iterations = 0

    # ------------------------------------------------------------------
    def _initial_solution(self, builder: MNABuilder) -> np.ndarray:
        if self.use_ic:
            x0 = np.zeros(builder.size)
            # Device-level initial conditions (e.g. ``ic=`` on capacitors
            # with a grounded negative terminal) seed the node voltages.
            for device in builder.devices:
                initial = getattr(device, "initial_voltage", None)
                if initial is None:
                    continue
                pos, neg = device.nodes[0], device.nodes[1]
                if neg == GROUND and pos in builder.node_index:
                    x0[builder.node_index[pos]] = float(initial)
            for node, value in self.initial_conditions.items():
                node = normalize_node(node)
                if node in builder.node_index:
                    x0[builder.node_index[node]] = float(value)
            return x0
        return solve_operating_point(builder, self.initial_conditions or None)

    def run(self) -> TransientResult:
        builder = MNABuilder(self.circuit, self.options)
        options = self.options

        x0 = self._initial_solution(builder)
        state = builder.new_state("tran")
        state.use_ic = self.use_ic
        state.x = x0.copy()
        state.time = 0.0

        for device in builder.devices:
            device.init_state(state)

        num_outputs = int(round(self.tstop / self.tstep)) + 1
        times = self.tstep * np.arange(num_outputs)
        node_traces = {name: np.zeros(num_outputs) for name in builder.node_names}
        branch_names = [d.name.lower() for d in builder.devices
                        if d.branch_count() > 0] if self.record_currents else []
        branch_traces = {name: np.zeros(num_outputs) for name in branch_names}

        def record(index: int) -> None:
            voltages = builder.node_voltages(state.x)
            for name in builder.node_names:
                node_traces[name][index] = voltages[name]
            for device in builder.devices:
                if device.branch_count() > 0 and device.name.lower() in branch_traces:
                    branch_traces[device.name.lower()][index] = float(
                        state.x[device.branch_index])

        record(0)

        use_trap = options.integration.lower().startswith("trap")
        min_step = self.tstep * options.min_step_fraction
        step = self.tstep
        first_step_done = False

        for output_index in range(1, num_outputs):
            target = times[output_index]
            while state.time < target - 1e-18 * max(1.0, target):
                step = min(step, target - state.time)
                accepted = False
                while not accepted:
                    dt = step
                    # Integration coefficients: backward Euler for the very
                    # first step (damps the inconsistent initial derivative),
                    # trapezoidal afterwards if requested.
                    if use_trap and first_step_done:
                        state.integ_c0 = 2.0 / dt
                        state.integ_c1 = 1.0
                    else:
                        state.integ_c0 = 1.0 / dt
                        state.integ_c1 = 0.0
                    state.dt = dt
                    state.time = state.time  # unchanged until accepted
                    saved_x = state.x.copy()
                    state.time += dt
                    try:
                        solve_newton(builder, state, x0=saved_x,
                                     max_iterations=options.itl4)
                        accepted = True
                    except (ConvergenceError, SingularMatrixError):
                        # Reject: restore and halve the step.
                        state.time -= dt
                        state.x = saved_x
                        step *= 0.5
                        if step < min_step:
                            raise ConvergenceError(
                                f"transient step fell below the minimum at "
                                f"t={state.time:g}s")
                for device in builder.devices:
                    device.accept_timestep(state)
                first_step_done = True
                # Gentle step recovery towards the print interval.
                if step < self.tstep:
                    step = min(step * 2.0, self.tstep)
            record(output_index)

        return TransientResult(times, node_traces, branch_traces)
