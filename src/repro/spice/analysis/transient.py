"""Transient analysis with fixed print step and adaptive internal stepping.

The linear algebra of every timestep goes through the solver backend
selected for the circuit (:mod:`repro.spice.analysis.backends`): dense
LAPACK below the size threshold, sparse SuperLU above it, overridable via
``solver_backend``.  The choice taken, together with iteration and step
counts, is reported in :attr:`TransientResult.stats`.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from ...errors import AnalysisError, ConvergenceError, SingularMatrixError
from ..netlist import Circuit, normalize_node, GROUND
from ..waveform import Waveform
from .dc import solve_operating_point
from .mna import MNABuilder, SimState, SimulationOptions
from .newton import solve_newton

#: Hard ceiling on the number of print points (guards against pathological
#: ``tstop/tstep`` ratios allocating unbounded trace memory).
MAX_PRINT_POINTS = 5_000_000


class TransientResult:
    """Node voltages versus time.

    Signals can be read with ``result["11"]``, ``result["v(11)"]`` or
    :meth:`waveform`, all returning :class:`~repro.spice.waveform.Waveform`
    objects.  Kernel telemetry of the run (Newton iterations, accepted and
    rejected internal steps, linear-bypass flag) is available in
    :attr:`stats`.
    """

    def __init__(self, time: np.ndarray, node_traces: dict[str, np.ndarray],
                 branch_traces: dict[str, np.ndarray] | None = None,
                 stats: dict | None = None,
                 tail_time: np.ndarray | None = None,
                 tail_traces: dict[str, np.ndarray] | None = None):
        self.time = np.asarray(time, dtype=float)
        self._nodes = node_traces
        self._branches = branch_traces or {}
        self.stats = dict(stats or {})
        #: Print times of the downsampled reporting tail (streaming runs
        #: with ``tail_downsample``; ``None`` otherwise).
        self.tail_time = (None if tail_time is None
                          else np.asarray(tail_time, dtype=float))
        self._tail = tail_traces or {}

    @staticmethod
    def _canonical(signal: str) -> str:
        text = signal.strip().lower()
        if text.startswith("v(") and text.endswith(")"):
            text = text[2:-1]
        return normalize_node(text)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    @property
    def newton_iterations(self) -> int:
        """Total linear solves spent across the run (workload metric)."""
        return int(self.stats.get("newton_iterations", 0))

    def waveform(self, signal: str) -> Waveform:
        key = self._canonical(signal)
        if key == GROUND:
            return Waveform(self.time, np.zeros_like(self.time), name="v(0)")
        if key in self._nodes:
            return Waveform(self.time, self._nodes[key], name=f"v({key})")
        if key in self._branches:
            return Waveform(self.time, self._branches[key], name=f"i({key})",
                            unit="A")
        if key in self._tail:
            # Streaming run: the node was not selected for full-resolution
            # recording but is available on the downsampled reporting tail.
            return Waveform(self.tail_time, self._tail[key], name=f"v({key})")
        raise AnalysisError(f"no recorded signal named {signal!r}")

    def current(self, device_name: str) -> Waveform:
        key = device_name.strip().lower()
        if key not in self._branches:
            raise AnalysisError(f"no recorded branch current for {device_name!r}")
        return Waveform(self.time, self._branches[key], name=f"i({key})", unit="A")

    def __getitem__(self, signal: str) -> Waveform:
        return self.waveform(signal)

    def final_voltages(self) -> dict[str, float]:
        return {name: float(values[-1]) for name, values in self._nodes.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"TransientResult({len(self.time)} points, "
                f"{len(self._nodes)} nodes)")


class TransientAnalysis:
    """SPICE ``.tran tstep tstop`` equivalent.

    Parameters
    ----------
    circuit:
        Circuit to simulate.
    tstop:
        Final time [s].
    tstep:
        Print (output) interval [s].
    use_ic:
        Skip the DC operating point and start from the supplied
        ``initial_conditions`` (defaulting to 0 V everywhere), mirroring the
        SPICE ``UIC`` keyword.  This is how the paper's VCO simulations are
        started ("after the activation of the supply voltage").
    initial_conditions:
        Mapping node name -> initial voltage, honoured when ``use_ic`` is
        set.
    solver_backend:
        Linear-solver backend selection: ``"auto"`` (default, by matrix
        size), ``"dense"`` or ``"sparse"``; see
        :mod:`repro.spice.analysis.backends`.  The backend actually used is
        recorded in ``TransientResult.stats["solver_backend"]``.
    record_nodes:
        ``None`` (default) records every node and — subject to
        ``record_currents`` — every branch current, materialising the full
        unknowns × time trace matrix.  A sequence of node names switches to
        *observed-node streaming*: only those nodes are recorded at print
        resolution, cutting trace memory from ``O(size × points)`` to
        ``O(observed × points)`` (the campaign layer uses this for its
        comparator nodes).  Unknown node names raise
        :class:`~repro.errors.AnalysisError` up front.
    tail_downsample:
        Opt-in reporting tail for streaming runs: when ``record_nodes`` is
        given and this is > 0, *all* node voltages are additionally kept at
        every ``tail_downsample``-th print point (plus the final one),
        retrievable through :meth:`TransientResult.waveform` at the reduced
        resolution.  Ignored when ``record_nodes`` is ``None``.

    Fully linear circuits (R/C/L plus independent and linear controlled
    sources) bypass Newton iteration entirely: each distinct internal step
    size is factorised once and the factors (LAPACK LU or SuperLU,
    depending on the backend) are reused across all timesteps taken with
    that step size.
    """

    def __init__(self, circuit: Circuit, tstop: float, tstep: float,
                 options: SimulationOptions | None = None,
                 use_ic: bool = False,
                 initial_conditions: dict[str, float] | None = None,
                 record_currents: bool = True,
                 solver_backend: str | None = None,
                 record_nodes=None,
                 tail_downsample: int = 0):
        if tstop <= 0.0 or tstep <= 0.0:
            raise AnalysisError("tstop and tstep must be positive")
        if tstep > tstop:
            raise AnalysisError("tstep must not exceed tstop")
        if tail_downsample < 0:
            raise AnalysisError("tail_downsample must be >= 0")
        self.circuit = circuit
        self.tstop = float(tstop)
        self.tstep = float(tstep)
        self.options = options or SimulationOptions()
        self.use_ic = use_ic
        self.initial_conditions = dict(initial_conditions or {})
        self.record_currents = record_currents
        self.solver_backend = solver_backend
        self.record_nodes = (None if record_nodes is None
                             else tuple(record_nodes))
        self.tail_downsample = int(tail_downsample)

    # ------------------------------------------------------------------
    def _initial_solution(self, builder: MNABuilder) -> np.ndarray:
        if self.use_ic:
            x0 = np.zeros(builder.size)
            # Device-level initial conditions (e.g. ``ic=`` on capacitors
            # with a grounded negative terminal) seed the node voltages.
            for device in builder.devices:
                initial = getattr(device, "initial_voltage", None)
                if initial is None:
                    continue
                pos, neg = device.nodes[0], device.nodes[1]
                if neg == GROUND and pos in builder.node_index:
                    x0[builder.node_index[pos]] = float(initial)
            for node, value in self.initial_conditions.items():
                node = normalize_node(node)
                if node in builder.node_index:
                    x0[builder.node_index[node]] = float(value)
            return x0
        return solve_operating_point(builder, self.initial_conditions or None)

    def print_grid(self) -> np.ndarray:
        """The output time points: multiples of ``tstep`` with the final
        point clamped to ``tstop``.

        A ``tstop`` that is not an integer multiple of ``tstep`` gets an
        extra final point at exactly ``tstop`` (the previous behaviour
        rounded the point count and could silently stop short of ``tstop``,
        flipping detection verdicts near the end of a test).
        """
        # The small relative fudge absorbs binary floating-point error in
        # tstop/tstep (e.g. 4e-6/1e-8 = 399.99999999999994).
        ratio = self.tstop / self.tstep
        num_full = int(math.floor(ratio + 1e-9))
        if num_full + 2 > MAX_PRINT_POINTS:
            raise AnalysisError(
                f"transient print grid would need {num_full + 1} points "
                f"(tstop={self.tstop:g}, tstep={self.tstep:g}); "
                f"the limit is {MAX_PRINT_POINTS}")
        times = self.tstep * np.arange(num_full + 1)
        remainder = self.tstop - float(times[-1])
        if remainder > 1e-9 * self.tstep:
            if remainder < self.tstep * self.options.min_step_fraction:
                warnings.warn(
                    f"tstop={self.tstop:g} leaves a final print interval of "
                    f"{remainder:g}s, far below tstep={self.tstep:g}; "
                    "the grid is pathological and the last step may not "
                    "converge", stacklevel=2)
            times = np.append(times, self.tstop)
        else:
            # Integer ratio up to floating-point drift: land exactly on tstop.
            times[-1] = self.tstop
        return times

    def run(self) -> TransientResult:
        builder = MNABuilder(self.circuit, self.options,
                             solver_backend=self.solver_backend)
        options = self.options

        x0 = self._initial_solution(builder)
        state = builder.new_state("tran")
        state.use_ic = self.use_ic
        state.x = x0.copy()
        state.time = 0.0

        for device in builder.devices:
            device.init_state(state)

        times = self.print_grid()
        num_outputs = len(times)
        select = self._recorded_columns(builder)
        if select is None:
            # One row per print point; node/branch traces are column views.
            data = np.zeros((num_outputs, builder.size))
        else:
            # Observed-node streaming: keep only the selected columns.
            data = np.zeros((num_outputs, len(select[0])))
        tail_rows: dict[int, int] = {}
        tail_data = None
        if select is not None and self.tail_downsample > 0:
            # Downsampled full-width tail for reporting: every Nth print
            # point plus the final one.
            rows = list(range(0, num_outputs, self.tail_downsample))
            if rows[-1] != num_outputs - 1:
                rows.append(num_outputs - 1)
            tail_rows = {print_index: row for row, print_index in
                         enumerate(rows)}
            tail_data = np.zeros((len(rows), builder.size))
            tail_data[0] = state.x
        data[0] = state.x if select is None else state.x[select[0]]

        use_trap = options.integration.lower().startswith("trap")
        min_step = self.tstep * options.min_step_fraction
        step = self.tstep
        first_step_done = False

        linear = builder.is_linear
        lu_cache: dict[tuple[float, float, float], object] = {}
        newton_iterations = 0
        accepted_steps = 0
        rejected_steps = 0

        for output_index in range(1, num_outputs):
            target = times[output_index]
            while state.time < target - 1e-18 * max(1.0, target):
                # The actual sub-step is the adaptive step clamped to the
                # print target; ``step`` itself keeps the adaptive history so
                # that a tiny clamped final sub-step cannot distort the
                # accepted-step recovery below.
                dt = min(step, target - state.time)
                accepted = False
                while not accepted:
                    # Integration coefficients: backward Euler for the very
                    # first step (damps the inconsistent initial derivative),
                    # trapezoidal afterwards if requested.
                    if use_trap and first_step_done:
                        state.integ_c0 = 2.0 / dt
                        state.integ_c1 = 1.0
                    else:
                        state.integ_c0 = 1.0 / dt
                        state.integ_c1 = 0.0
                    state.dt = dt
                    saved_x = state.x.copy()
                    state.time += dt
                    try:
                        if linear:
                            self._solve_linear_step(builder, state, lu_cache)
                            newton_iterations += 1
                        else:
                            solve_newton(builder, state, x0=saved_x,
                                         max_iterations=options.itl4)
                            newton_iterations += state.last_newton_iterations
                        accepted = True
                    except (ConvergenceError, SingularMatrixError):
                        # Reject: restore and halve the sub-step; the
                        # adaptive step follows the rejection.
                        state.time -= dt
                        state.x = saved_x
                        rejected_steps += 1
                        dt *= 0.5
                        step = dt
                        if dt < min_step:
                            raise ConvergenceError(
                                f"transient step fell below the minimum at "
                                f"t={state.time:g}s")
                builder.accept_timestep(state)
                first_step_done = True
                accepted_steps += 1
                # Gentle step recovery towards the print interval, driven
                # only by genuinely accepted adaptive steps (a clamped final
                # sub-step leaves the adaptive step untouched).
                if dt >= step and step < self.tstep:
                    step = min(step * 2.0, self.tstep)
            data[output_index] = (state.x if select is None
                                  else state.x[select[0]])
            if tail_data is not None and output_index in tail_rows:
                tail_data[tail_rows[output_index]] = state.x

        if select is None:
            node_traces = {name: data[:, index]
                           for name, index in builder.node_index.items()}
            branch_traces = {}
            if self.record_currents:
                branch_traces = {device.name.lower():
                                 data[:, device.branch_index]
                                 for device in builder.devices
                                 if device.branch_count() > 0}
        else:
            node_traces = {}
            branch_traces = {}
            for column, (name, is_branch) in enumerate(select[1]):
                target = branch_traces if is_branch else node_traces
                target[name] = data[:, column]
        tail_time = None
        tail_traces = None
        if tail_data is not None:
            tail_time = times[sorted(tail_rows)]
            tail_traces = {name: tail_data[:, index]
                           for name, index in builder.node_index.items()
                           if name not in node_traces}

        stats = {
            "newton_iterations": newton_iterations,
            "accepted_steps": accepted_steps,
            "rejected_steps": rejected_steps,
            "linear_bypass": linear,
            "solver_backend": builder.backend.name,
            "matrix_size": builder.size,
            "recorded_nodes": (data.shape[1] if select is not None
                               else len(builder.node_index)),
            "trace_bytes": int(data.nbytes) + (0 if tail_data is None
                                               else int(tail_data.nbytes)),
        }
        return TransientResult(times, node_traces, branch_traces, stats=stats,
                               tail_time=tail_time, tail_traces=tail_traces)

    def _recorded_columns(self, builder: MNABuilder):
        """Resolve ``record_nodes`` to ``(column indices, [(name,
        is_branch)])`` or ``None`` for full recording.

        Names resolve against the node index first, then against device
        branch currents (so a campaign observing a source current keeps
        working under streaming).  Ground is dropped silently (it is
        synthesised by :meth:`TransientResult.waveform`); any other unknown
        signal is an error now rather than after the whole run.
        """
        if self.record_nodes is None:
            return None
        branch_columns = {device.name.lower(): device.branch_index
                          for device in builder.devices
                          if device.branch_count() > 0}
        indices: list[int] = []
        names: list[tuple[str, bool]] = []
        seen: set[str] = set()
        for node in self.record_nodes:
            key = normalize_node(str(node))
            if key == GROUND or key in seen:
                continue
            if key in builder.node_index:
                indices.append(builder.node_index[key])
                names.append((key, False))
            elif key in branch_columns:
                indices.append(branch_columns[key])
                names.append((key, True))
            else:
                raise AnalysisError(
                    f"record_nodes names unknown signal {node!r} "
                    f"(circuit has {len(builder.node_index)} nodes)")
            seen.add(key)
        return np.asarray(indices, dtype=int), names

    # ------------------------------------------------------------------
    def _solve_linear_step(self, builder: MNABuilder, state: SimState,
                           lu_cache: dict) -> None:
        """Advance a fully linear circuit by one sub-step.

        The MNA matrix of a linear circuit depends only on the integration
        coefficients (and gmin), not on time or the solution, so each
        distinct step size is factorised exactly once — through the
        backend's :meth:`freeze_solver` (dense LAPACK LU or sparse SuperLU)
        — and the factors are reused for every timestep taken with that
        ``dt``.
        """
        base = builder.assemble_constant(state)
        key = (state.integ_c0, state.integ_c1, state.gmin)
        solver = lu_cache.get(key)
        if solver is None:
            solver = base.freeze_solver()
            lu_cache[key] = solver
        state.x = solver(base.rhs)
