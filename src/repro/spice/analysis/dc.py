"""DC operating point and DC sweep analyses."""

from __future__ import annotations

import numpy as np

from ...errors import AnalysisError, ConvergenceError, SingularMatrixError
from ..netlist import Circuit, normalize_node, GROUND
from ..waveform import Waveform
from .mna import MNABuilder, SimulationOptions
from .newton import solve_newton


class OperatingPoint:
    """Result of an operating-point analysis: node voltages and branch
    currents, plus access to per-device operating data."""

    def __init__(self, builder: MNABuilder, solution: np.ndarray):
        self._builder = builder
        self.solution = np.array(solution, copy=True)
        self.node_voltages = builder.node_voltages(self.solution)

    def voltage(self, node: str) -> float:
        node = normalize_node(node)
        if node == GROUND:
            return 0.0
        try:
            return float(self.node_voltages[node])
        except KeyError:
            raise AnalysisError(f"unknown node {node!r}") from None

    def __getitem__(self, node: str) -> float:
        return self.voltage(node)

    def branch_current(self, device_name: str) -> float:
        """Branch current of a device that defines one (V source, L, E, H)."""
        device = self._builder.circuit.device(device_name)
        return float(self.solution[device.branch_index])

    def device_operating_point(self, device_name: str) -> dict:
        """Operating-point record of a nonlinear device (MOSFET/diode)."""
        device = self._builder.circuit.device(device_name)
        op = getattr(device, "operating_point", None)
        if op is None:
            raise AnalysisError(
                f"device {device_name!r} does not expose an operating point")
        return op

    def as_dict(self) -> dict[str, float]:
        return dict(self.node_voltages)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"OperatingPoint({len(self.node_voltages)} nodes)"


class OperatingPointAnalysis:
    """DC operating point with gmin and source stepping fallbacks."""

    def __init__(self, circuit: Circuit, options: SimulationOptions | None = None):
        self.circuit = circuit
        self.options = options or SimulationOptions()

    def run(self, initial_guess: dict[str, float] | None = None) -> OperatingPoint:
        builder = MNABuilder(self.circuit, self.options)
        solution = solve_operating_point(builder, initial_guess)
        return OperatingPoint(builder, solution)


def _initial_vector(builder: MNABuilder,
                    initial_guess: dict[str, float] | None) -> np.ndarray:
    x0 = np.zeros(builder.size)
    if initial_guess:
        for node, value in initial_guess.items():
            node = normalize_node(node)
            if node in builder.node_index:
                x0[builder.node_index[node]] = value
    return x0


def solve_operating_point(builder: MNABuilder,
                          initial_guess: dict[str, float] | None = None
                          ) -> np.ndarray:
    """Find the DC solution of a bound circuit.

    Tries a plain Newton solve first, then gmin stepping, then source
    stepping.  Raises :class:`ConvergenceError` if all strategies fail.
    """
    options = builder.options
    x0 = _initial_vector(builder, initial_guess)

    state = builder.new_state("op")
    try:
        return solve_newton(builder, state, x0=x0, max_iterations=options.itl1)
    except (ConvergenceError, SingularMatrixError):
        pass

    # --- gmin stepping -------------------------------------------------
    x = x0.copy()
    try:
        gmin_start = 1e-2
        steps = max(options.gmin_steps, 1)
        factors = np.logspace(np.log10(gmin_start), np.log10(options.gmin), steps)
        for gmin in factors:
            state = builder.new_state("op")
            state.gmin = float(gmin)
            x = solve_newton(builder, state, x0=x, max_iterations=options.itl1)
        return x
    except (ConvergenceError, SingularMatrixError):
        pass

    # --- source stepping ------------------------------------------------
    x = x0.copy()
    steps = max(options.source_steps, 2)
    try:
        for factor in np.linspace(1.0 / steps, 1.0, steps):
            state = builder.new_state("op")
            state.source_factor = float(factor)
            x = solve_newton(builder, state, x0=x, max_iterations=options.itl1)
        return x
    except (ConvergenceError, SingularMatrixError) as exc:
        raise ConvergenceError(
            "operating point failed (Newton, gmin stepping and source "
            f"stepping all diverged): {exc}") from exc


class DCSweepResult:
    """Result of a DC sweep: node voltages versus the swept source value."""

    def __init__(self, source_name: str, values: np.ndarray,
                 node_traces: dict[str, np.ndarray]):
        self.source_name = source_name
        self.values = values
        self._traces = node_traces

    def waveform(self, node: str) -> Waveform:
        node = normalize_node(node)
        if node not in self._traces:
            raise AnalysisError(f"unknown node {node!r} in sweep result")
        values = self.values
        trace = self._traces[node]
        if values.size > 1 and values[0] > values[-1]:
            # Downward sweeps are stored in ascending-x order for plotting.
            values = values[::-1]
            trace = trace[::-1]
        return Waveform(values, trace, name=f"v({node})",
                        x_unit=self.source_name)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._traces)

    def __getitem__(self, node: str) -> Waveform:
        return self.waveform(node)


class DCSweepAnalysis:
    """Sweep the DC value of one independent source.

    Mirrors the SPICE ``.dc`` card: ``DCSweepAnalysis(circuit, "vin", 0, 5,
    0.1).run()``.
    """

    def __init__(self, circuit: Circuit, source_name: str, start: float,
                 stop: float, step: float,
                 options: SimulationOptions | None = None):
        if step == 0.0:
            raise AnalysisError("DC sweep step must be non-zero")
        self.circuit = circuit
        self.source_name = source_name
        self.start = float(start)
        self.stop = float(stop)
        self.step = float(step)
        self.options = options or SimulationOptions()

    def run(self) -> DCSweepResult:
        builder = MNABuilder(self.circuit, self.options)
        # Validate that the source exists and is an independent source.
        source = self.circuit.device(self.source_name)
        if not hasattr(source, "source_value"):
            raise AnalysisError(
                f"{self.source_name!r} is not an independent source")
        count = int(np.floor((self.stop - self.start) / self.step + 0.5)) + 1
        values = self.start + self.step * np.arange(count)

        node_traces = {name: np.zeros(count) for name in builder.node_names}
        x_prev: np.ndarray | None = None
        for index, value in enumerate(values):
            state = builder.new_state("dc")
            state.source_overrides[self.source_name.lower()] = float(value)
            if x_prev is None:
                solution = solve_operating_point(builder)
                # Re-solve with the override applied (solve_operating_point
                # used a fresh state); keep it simple and do a Newton pass.
                state.x = solution
                solution = solve_newton(builder, state, x0=solution)
            else:
                solution = solve_newton(builder, state, x0=x_prev)
            x_prev = solution
            voltages = builder.node_voltages(solution)
            for name in builder.node_names:
                node_traces[name][index] = voltages[name]
        return DCSweepResult(self.source_name, values, node_traces)
