"""Modified nodal analysis plumbing: options, state and builder.

The dense reference system (:class:`MNASystem`) and the cached LU helper
(:func:`make_lu_solver`) live in :mod:`repro.spice.analysis.backends` with
the other system representations — device stamps must reach matrix memory
only through the backend scatter seam — and are re-exported here for
backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...units import DEFAULT_TEMPERATURE_C
from ..devices.base import CompanionCapacitorBank, Device as _Device
from ..netlist import Circuit
from .backends import (MNASystem, SolverBackend, make_lu_solver,
                       select_backend)

__all__ = ["MNABuilder", "MNASystem", "SimState", "SimulationOptions",
           "make_lu_solver"]


@dataclass
class SimulationOptions:
    """Tuning knobs shared by all analyses (SPICE ``.options`` equivalent)."""

    #: Relative convergence tolerance on solution variables.
    reltol: float = 1e-3
    #: Absolute voltage tolerance [V].
    vntol: float = 1e-6
    #: Absolute current tolerance [A] (branch unknowns).
    abstol: float = 1e-9
    #: Minimum conductance stamped on every node diagonal [S].
    gmin: float = 1e-12
    #: Maximum Newton iterations for the operating point.
    itl1: int = 200
    #: Maximum Newton iterations per transient timestep.
    itl4: int = 60
    #: Simulation temperature [degrees Celsius].
    temperature: float = DEFAULT_TEMPERATURE_C
    #: Transient integration method ladder: "trap" (default; BE first
    #: step, trapezoidal, BDF-3..5 under the adaptive order controller),
    #: "gear"/"bdf" (BE first step, then BDF-2..5) or "be" (backward
    #: Euler pinned at order 1).
    integration: str = "trap"
    #: Largest node-voltage change applied per Newton iteration [V].
    max_voltage_step: float = 10.0
    #: Number of decades for gmin stepping when the plain OP fails.
    gmin_steps: int = 10
    #: Number of source-stepping increments when gmin stepping also fails.
    source_steps: int = 10
    #: Smallest internal transient step as a fraction of the print step.
    min_step_fraction: float = 1.0 / 256.0


class SimState:
    """Mutable per-analysis state shared with the device stamps."""

    def __init__(self, size: int, options: SimulationOptions, mode: str = "op"):
        self.mode = mode
        self.options = options
        self.x = np.zeros(size)
        self.time = 0.0
        self.dt = 0.0
        #: Companion-model coefficients published by the transient driver.
        self.integ_c0 = 0.0
        self.integ_c1 = 0.0
        #: Predictor polynomial evaluated at the new time point (full
        #: solution vector) and its time derivative, published by the
        #: transient driver for fixed-leading-coefficient BDF steps
        #: (``None`` for trap/BE steps — the legacy two-term companion
        #: formula applies then).  With these set, a companion element
        #: stamps ``geq = integ_c0 * C`` and
        #: ``ieq = C * (pred_dv - integ_c0 * pred_v)`` so the corrector
        #: solves ``x' = pred_dx + integ_c0 * (x - pred_x)``; the matrix
        #: still depends only on ``integ_c0`` (the fixed leading
        #: coefficient), which is what keeps the per-step-size
        #: factorisation caches valid across BDF orders.
        self.integ_pred_x: np.ndarray | None = None
        self.integ_pred_dx: np.ndarray | None = None
        self.gmin = options.gmin
        self.temperature = options.temperature
        #: Scale factor applied to independent sources (source stepping).
        self.source_factor = 1.0
        #: Per-source value overrides (used by DC sweeps), keyed by name.
        self.source_overrides: dict[str, float] = {}
        #: Angular frequency for AC analysis [rad/s].
        self.omega = 0.0
        #: Whether device/user initial conditions should be honoured.
        self.use_ic = False
        #: Set by nonlinear devices when voltage-step limiting was active in
        #: the last stamp; Newton refuses to declare convergence while set.
        self.limited = False
        #: Iteration count of the most recent Newton solve (telemetry).
        self.last_newton_iterations = 0

    def v(self, index: int) -> float:
        """Voltage of the matrix row ``index`` (ground rows return 0)."""
        if index < 0:
            return 0.0
        return float(self.x[index].real)

    def pred(self, index: int) -> float:
        """Predictor value of matrix row ``index`` (ground rows return 0)."""
        if index < 0 or self.integ_pred_x is None:
            return 0.0
        return float(self.integ_pred_x[index])

    def pred_d(self, index: int) -> float:
        """Predictor derivative of row ``index`` (ground rows return 0)."""
        if index < 0 or self.integ_pred_dx is None:
            return 0.0
        return float(self.integ_pred_dx[index])


class MNABuilder:
    """Binds a circuit to matrix indices and assembles MNA systems.

    Besides the legacy :meth:`build` (full reassembly from scratch), the
    builder offers the Newton fast path used by
    :func:`~repro.spice.analysis.newton.solve_newton`:

    * :meth:`assemble_constant` stamps everything that is fixed across the
      Newton iterations of one solve (linear devices, source values at the
      present time, companion-model history) into a cached base system; all
      companion capacitances go through one vectorized
      :class:`~repro.spice.devices.base.CompanionCapacitorBank` scatter.
    * :meth:`build_iteration` copies the base into a reused work system and
      stamps only the nonlinear device linearisations on top.

    The representation of the base/work systems (dense matrix vs sparse COO
    accumulation) is delegated to a solver backend
    (:mod:`repro.spice.analysis.backends`); ``solver_backend`` is ``"auto"``
    (select by matrix size), ``"dense"``, ``"sparse"`` or an explicit
    :class:`~repro.spice.analysis.backends.SolverBackend` instance.  The
    legacy :meth:`build` and the complex-valued :meth:`build_ac` always use
    dense systems regardless of the backend.
    """

    def __init__(self, circuit: Circuit, options: SimulationOptions | None = None,
                 solver_backend=None):
        self.circuit = circuit
        self.options = options or SimulationOptions()
        self.devices = circuit.devices
        for device in self.devices:
            device.prepare(circuit)
        self.node_names = circuit.nodes()
        self.node_index = {name: i for i, name in enumerate(self.node_names)}
        next_index = len(self.node_names)
        for device in self.devices:
            device.bind(self.node_index)
            next_index += device.assign_branches(next_index)
        self.num_nodes = len(self.node_names)
        self.size = next_index
        self.nonlinear_devices = [d for d in self.devices if d.is_nonlinear()]
        # Group nonlinear devices into vectorized per-iteration banks where
        # the device type provides one; the rest stay on the scalar path.
        bank_groups: dict[type, list] = {}
        self._scalar_nonlinear = []
        for device in self.nonlinear_devices:
            bank_cls = type(device).ITERATION_BANK
            if bank_cls is None:
                self._scalar_nonlinear.append(device)
            else:
                bank_groups.setdefault(bank_cls, []).append(device)
        self.iteration_banks = [cls(group)
                                for cls, group in bank_groups.items()]
        entries = []
        for device in self.devices:
            entries.extend(device.companion_entries())
        self.cap_bank = CompanionCapacitorBank(entries)
        # Devices the transient driver must still call accept_timestep on:
        # everything with a non-default override whose state is not fully
        # covered by the companion bank.
        self._accept_devices = [
            d for d in self.devices
            if type(d).accept_timestep is not _Device.accept_timestep
            and not d.companion_only_accept]
        self._diagonal = np.arange(self.num_nodes)
        if isinstance(solver_backend, SolverBackend):
            self.backend = solver_backend
        else:
            self.backend = select_backend(self.size, solver_backend)
        self._base = self.backend.create_system(self.size)
        self._work = self.backend.create_system(self.size)

    @property
    def is_linear(self) -> bool:
        """True when the circuit needs no Newton iteration at all."""
        return not self.nonlinear_devices

    # ------------------------------------------------------------------
    def new_state(self, mode: str) -> SimState:
        return SimState(self.size, self.options, mode)

    def build(self, state: SimState) -> MNASystem:
        """Assemble the (real) MNA system for the present state."""
        system = MNASystem(self.size)
        state.limited = False
        for device in self.devices:
            device.stamp(system, state)
        self._stamp_gmin(system, state)
        return system

    def assemble_constant(self, state: SimState):
        """Assemble the iteration-constant base system for one Newton solve."""
        base = self._base
        base.clear()
        for device in self.devices:
            device.stamp_constant(base, state)
        if state.mode == "tran":
            self.cap_bank.stamp_tran(base, state)
        self._stamp_gmin(base, state)
        return base

    def build_iteration(self, state: SimState):
        """Base system plus the present nonlinear linearisations.

        Requires a preceding :meth:`assemble_constant` for this solve.
        """
        work = self._work
        work.copy_from(self._base)
        state.limited = False
        for bank in self.iteration_banks:
            bank.stamp_iteration(work, state)
        for device in self._scalar_nonlinear:
            device.stamp_iteration(work, state)
        return work

    def begin_iterations(self) -> None:
        """Load per-device Newton history into the iteration banks; call
        once before the build_iteration loop of a solve."""
        for bank in self.iteration_banks:
            bank.load_history()

    def end_iterations(self) -> None:
        """Flush bank history and linearisations back to the devices; call
        once after the build_iteration loop of a solve (also on failure)."""
        for bank in self.iteration_banks:
            bank.store_history()

    def accept_timestep(self, state: SimState) -> None:
        """Commit the accepted transient sub-step to device history.

        Companion capacitances are committed in one vectorized pass by the
        bank; only devices with additional dynamic state (e.g. inductors)
        are visited individually.
        """
        self.cap_bank.accept(state)
        for device in self._accept_devices:
            device.accept_timestep(state)

    def build_ac(self, state: SimState) -> MNASystem:
        """Assemble the complex small-signal system at ``state.omega``."""
        system = MNASystem(self.size, dtype=complex)
        for device in self.devices:
            device.stamp_ac(system, state)
        self._stamp_gmin(system, state)
        return system

    def _stamp_gmin(self, system, state: SimState) -> None:
        system.add_diagonal(self._diagonal, state.gmin)

    # ------------------------------------------------------------------
    def voltage(self, solution: np.ndarray, node: str) -> float | complex:
        """Voltage of a node name in a solution vector."""
        from ..netlist import normalize_node, GROUND

        node = normalize_node(node)
        if node == GROUND:
            return 0.0
        index = self.node_index[node]
        value = solution[index]
        return complex(value) if np.iscomplexobj(solution) else float(value)

    def node_voltages(self, solution: np.ndarray) -> dict[str, float]:
        return {name: (complex(solution[i]) if np.iscomplexobj(solution)
                       else float(solution[i]))
                for name, i in self.node_index.items()}
