"""Modified nodal analysis plumbing: equation system, state and builder."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...errors import SingularMatrixError
from ...units import DEFAULT_TEMPERATURE_C
from ..netlist import Circuit


@dataclass
class SimulationOptions:
    """Tuning knobs shared by all analyses (SPICE ``.options`` equivalent)."""

    #: Relative convergence tolerance on solution variables.
    reltol: float = 1e-3
    #: Absolute voltage tolerance [V].
    vntol: float = 1e-6
    #: Absolute current tolerance [A] (branch unknowns).
    abstol: float = 1e-9
    #: Minimum conductance stamped on every node diagonal [S].
    gmin: float = 1e-12
    #: Maximum Newton iterations for the operating point.
    itl1: int = 200
    #: Maximum Newton iterations per transient timestep.
    itl4: int = 60
    #: Simulation temperature [degrees Celsius].
    temperature: float = DEFAULT_TEMPERATURE_C
    #: Transient integration method: "trap" or "be" (backward Euler).
    integration: str = "trap"
    #: Largest node-voltage change applied per Newton iteration [V].
    max_voltage_step: float = 10.0
    #: Number of decades for gmin stepping when the plain OP fails.
    gmin_steps: int = 10
    #: Number of source-stepping increments when gmin stepping also fails.
    source_steps: int = 10
    #: Smallest internal transient step as a fraction of the print step.
    min_step_fraction: float = 1.0 / 256.0


class SimState:
    """Mutable per-analysis state shared with the device stamps."""

    def __init__(self, size: int, options: SimulationOptions, mode: str = "op"):
        self.mode = mode
        self.options = options
        self.x = np.zeros(size)
        self.time = 0.0
        self.dt = 0.0
        #: Companion-model coefficients published by the transient driver.
        self.integ_c0 = 0.0
        self.integ_c1 = 0.0
        self.gmin = options.gmin
        self.temperature = options.temperature
        #: Scale factor applied to independent sources (source stepping).
        self.source_factor = 1.0
        #: Per-source value overrides (used by DC sweeps), keyed by name.
        self.source_overrides: dict[str, float] = {}
        #: Angular frequency for AC analysis [rad/s].
        self.omega = 0.0
        #: Whether device/user initial conditions should be honoured.
        self.use_ic = False
        #: Set by nonlinear devices when voltage-step limiting was active in
        #: the last stamp; Newton refuses to declare convergence while set.
        self.limited = False

    def v(self, index: int) -> float:
        """Voltage of the matrix row ``index`` (ground rows return 0)."""
        if index < 0:
            return 0.0
        return float(self.x[index].real) if np.iscomplexobj(self.x) else float(self.x[index])


class MNASystem:
    """Dense MNA matrix and right-hand side with ground-aware stamping."""

    def __init__(self, size: int, dtype=float):
        self.size = size
        self.matrix = np.zeros((size, size), dtype=dtype)
        self.rhs = np.zeros(size, dtype=dtype)

    def clear(self) -> None:
        self.matrix[:, :] = 0.0
        self.rhs[:] = 0.0

    def add(self, row: int, col: int, value) -> None:
        """Add ``value`` at (row, col); indices of -1 refer to ground and are
        silently dropped."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def solve(self) -> np.ndarray:
        """Solve the linear system, raising :class:`SingularMatrixError` on a
        singular or numerically unusable matrix."""
        try:
            solution = np.linalg.solve(self.matrix, self.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(f"MNA matrix is singular: {exc}") from exc
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("MNA solution contains NaN/Inf")
        return solution


class MNABuilder:
    """Binds a circuit to matrix indices and assembles MNA systems."""

    def __init__(self, circuit: Circuit, options: SimulationOptions | None = None):
        self.circuit = circuit
        self.options = options or SimulationOptions()
        self.devices = circuit.devices
        for device in self.devices:
            device.prepare(circuit)
        self.node_names = circuit.nodes()
        self.node_index = {name: i for i, name in enumerate(self.node_names)}
        next_index = len(self.node_names)
        for device in self.devices:
            device.bind(self.node_index)
            next_index += device.assign_branches(next_index)
        self.num_nodes = len(self.node_names)
        self.size = next_index

    # ------------------------------------------------------------------
    def new_state(self, mode: str) -> SimState:
        return SimState(self.size, self.options, mode)

    def build(self, state: SimState) -> MNASystem:
        """Assemble the (real) MNA system for the present state."""
        system = MNASystem(self.size)
        state.limited = False
        for device in self.devices:
            device.stamp(system, state)
        self._stamp_gmin(system, state)
        return system

    def build_ac(self, state: SimState) -> MNASystem:
        """Assemble the complex small-signal system at ``state.omega``."""
        system = MNASystem(self.size, dtype=complex)
        for device in self.devices:
            device.stamp_ac(system, state)
        self._stamp_gmin(system, state)
        return system

    def _stamp_gmin(self, system: MNASystem, state: SimState) -> None:
        for row in range(self.num_nodes):
            system.matrix[row, row] += state.gmin

    # ------------------------------------------------------------------
    def voltage(self, solution: np.ndarray, node: str) -> float | complex:
        """Voltage of a node name in a solution vector."""
        from ..netlist import normalize_node, GROUND

        node = normalize_node(node)
        if node == GROUND:
            return 0.0
        index = self.node_index[node]
        value = solution[index]
        return complex(value) if np.iscomplexobj(solution) else float(value)

    def node_voltages(self, solution: np.ndarray) -> dict[str, float]:
        return {name: (complex(solution[i]) if np.iscomplexobj(solution)
                       else float(solution[i]))
                for name, i in self.node_index.items()}
