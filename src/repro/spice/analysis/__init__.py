"""Analyses of the SPICE substrate.

All analyses assemble modified-nodal-analysis systems through
:class:`~repro.spice.analysis.mna.MNABuilder`; the linear-solver backend
(dense LAPACK vs sparse SuperLU) is pluggable and auto-selected by matrix
size — see :mod:`repro.spice.analysis.backends` and
``docs/solver-backends.md``.
"""

from .ac import ACAnalysis, ACResult
from .backends import (
    BACKEND_CHOICES,
    SPARSE_AUTO_THRESHOLD,
    DenseSolverBackend,
    SolverBackend,
    SparseMNASystem,
    SparseSolverBackend,
    select_backend,
    sparse_available,
)
from .batched import (
    NUMERICS_MODES,
    BatchedTransient,
    BlockDiagonalSystem,
    WoodburySolver,
    low_rank_update,
)
from .dc import (
    DCSweepAnalysis,
    DCSweepResult,
    OperatingPoint,
    OperatingPointAnalysis,
    solve_operating_point,
)
from .mna import MNABuilder, MNASystem, SimState, SimulationOptions
from .newton import solve_newton
from .transient import (
    TIMESTEP_MODES,
    TransientAnalysis,
    TransientOptions,
    TransientResult,
    TransientRun,
    quantize_step,
)

__all__ = [
    "ACAnalysis",
    "ACResult",
    "NUMERICS_MODES",
    "BatchedTransient",
    "BlockDiagonalSystem",
    "WoodburySolver",
    "low_rank_update",
    "BACKEND_CHOICES",
    "SPARSE_AUTO_THRESHOLD",
    "DenseSolverBackend",
    "SolverBackend",
    "SparseMNASystem",
    "SparseSolverBackend",
    "select_backend",
    "sparse_available",
    "DCSweepAnalysis",
    "DCSweepResult",
    "OperatingPoint",
    "OperatingPointAnalysis",
    "solve_operating_point",
    "MNABuilder",
    "MNASystem",
    "SimState",
    "SimulationOptions",
    "solve_newton",
    "TIMESTEP_MODES",
    "TransientAnalysis",
    "TransientOptions",
    "TransientResult",
    "TransientRun",
    "quantize_step",
]
