"""Analyses of the SPICE substrate."""

from .ac import ACAnalysis, ACResult
from .dc import (
    DCSweepAnalysis,
    DCSweepResult,
    OperatingPoint,
    OperatingPointAnalysis,
    solve_operating_point,
)
from .mna import MNABuilder, MNASystem, SimState, SimulationOptions
from .newton import solve_newton
from .transient import TransientAnalysis, TransientResult

__all__ = [
    "ACAnalysis",
    "ACResult",
    "DCSweepAnalysis",
    "DCSweepResult",
    "OperatingPoint",
    "OperatingPointAnalysis",
    "solve_operating_point",
    "MNABuilder",
    "MNASystem",
    "SimState",
    "SimulationOptions",
    "solve_newton",
    "TransientAnalysis",
    "TransientResult",
]
