"""Lockstep (batched) transient simulation of fault variants.

A fault campaign simulates K mostly-identical circuits: each variant is
the nominal circuit with one device perturbed.  This module advances K
:class:`~repro.spice.analysis.transient.TransientRun` instances print
interval by print interval ("lockstep"), which enables the classic
concurrent-fault-simulation wins of Sebeke/Teixeira/Ohletz without
changing per-variant semantics:

* **early abort** — an observer watching the freshly produced print rows
  can stop a variant as soon as its verdict is decided (the campaign
  layer plugs the incremental persistence scan in here);
* **eviction** — a variant that fails to converge mid-batch is removed
  and reported, without perturbing its siblings (each variant owns its
  state and solver cache);
* **shared numerics** (opt-in) — linear variants can be served from the
  nominal factorisation plus a low-rank Woodbury update
  (:class:`WoodburySolver`), or from one block-diagonal factorisation of
  the whole group (:class:`BlockDiagonalSystem`, which reuses the cached
  COO→CSC scatter pattern of the sparse backend across re-assemblies).

In the default ``numerics="exact"`` mode every variant performs exactly
the arithmetic a serial :meth:`TransientAnalysis.run` would — lockstep
only reorders *which variant* computes next, never *what* it computes —
so batched and serial campaign records are identical by construction.
``docs/batching.md`` walks through the whole design.
"""

from __future__ import annotations

import numpy as np

from ...errors import (AnalysisError, ConvergenceError, SingularMatrixError)
from .backends import (_CSCPattern, _csc_matrix, _splu, MNASystem,
                       SparseMNASystem, make_lu_solver, sparse_available)
from .mna import MNABuilder
from .transient import TransientAnalysis, TransientRun

#: Recognised :class:`BatchedTransient` numerics modes.
NUMERICS_MODES = ("exact", "shared")


def dense_matrix(system) -> np.ndarray:
    """A dense copy of an assembled MNA system's matrix.

    Accepts both backend system types (dense :class:`MNASystem` and COO
    :class:`SparseMNASystem`); the shared-numerics delta extraction works
    on dense copies because fault deltas touch a handful of entries.
    """
    if isinstance(system, MNASystem):
        return system.matrix.copy()
    if isinstance(system, SparseMNASystem):
        return system._assemble().toarray()
    raise AnalysisError(
        f"cannot densify MNA system of type {type(system).__name__}")


def low_rank_update(nominal: np.ndarray, variant: np.ndarray,
                    max_rank: int) -> tuple[np.ndarray, np.ndarray] | None:
    """Express ``variant - nominal`` as columns of a low-rank update.

    Returns ``(U, columns)`` with ``variant = nominal + U @ I[columns].T``
    where ``U = (variant - nominal)[:, columns]`` and ``columns`` are the
    touched matrix columns, or ``None`` when more than ``max_rank``
    columns differ (the column count is an upper bound on the true rank
    of the delta — exact enough for single-device fault perturbations,
    which touch at most a few terminals).
    """
    delta = variant - nominal
    columns = np.nonzero(np.any(delta != 0.0, axis=0))[0]
    if len(columns) > max_rank:
        return None
    return delta[:, columns], columns


class WoodburySolver:
    """Solve ``(A0 + U Iᵀ_J) x = b`` through a factorisation of ``A0``.

    The classic Woodbury identity: with ``Z = A0⁻¹ U`` (one nominal solve
    per update column, done once at construction) and the small
    capacitance matrix ``C = I + Z[J]``,

    ``x = A0⁻¹ b − Z C⁻¹ (A0⁻¹ b)[J]``.

    Every per-timestep solve of a fault variant thus reuses the *nominal*
    LU factors — the variant's own matrix is never factorised.  Raises
    :class:`SingularMatrixError` when the capacitance matrix is singular
    (the perturbed system genuinely is singular then) or the solution is
    non-finite.
    """

    def __init__(self, base_solve, update: np.ndarray, columns: np.ndarray):
        """Precompute ``Z = A0⁻¹ U`` and factor the capacitance matrix.

        ``base_solve`` is a frozen solver of the nominal matrix (from
        ``freeze_solver``); ``update``/``columns`` come from
        :func:`low_rank_update`.
        """
        update = np.asarray(update, dtype=float)
        self._columns = np.asarray(columns, dtype=int)
        self._base = base_solve
        rank = update.shape[1]
        self._z = np.column_stack(
            [base_solve(update[:, j]) for j in range(rank)]) if rank \
            else np.zeros((update.shape[0], 0))
        capacitance = np.eye(rank) + self._z[self._columns, :]
        self._cap_solve = make_lu_solver(capacitance) if rank else None

    def __call__(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the perturbed system for ``rhs``."""
        y = self._base(rhs)
        if self._cap_solve is None:
            return y
        solution = y - self._z @ self._cap_solve(y[self._columns])
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError(
                "Woodbury-updated solution contains NaN/Inf")
        return solution


class BlockDiagonalSystem:
    """K same-size MNA matrices stacked into one block-diagonal solve.

    :meth:`update` scatters the K blocks into one stacked COO triplet set
    (block k offset by ``k·n`` on both axes) and factorises the stacked
    matrix once.  Under the sparse backend the symbolic COO→CSC scatter
    pattern (:class:`~repro.spice.analysis.backends._CSCPattern`) is
    computed on the first assembly and reused for every later one with
    the same structure, exactly like :class:`SparseMNASystem` does for a
    single matrix; without SciPy the stacked matrix is factorised
    densely.  :meth:`solve_all` solves all K right-hand sides against the
    one factorisation; :meth:`solve_block` serves a single variant.
    """

    def __init__(self, block_size: int, count: int):
        """Prepare for ``count`` blocks of ``block_size`` unknowns each."""
        if block_size < 1 or count < 1:
            raise AnalysisError(
                "block-diagonal systems need positive block size and count")
        self.block_size = int(block_size)
        self.count = int(count)
        self._pattern: _CSCPattern | None = None
        self._solve = None

    @property
    def size(self) -> int:
        """Total number of stacked unknowns (``block_size * count``)."""
        return self.block_size * self.count

    def update(self, blocks) -> None:
        """Assemble and factorise the stacked matrix from dense ``blocks``.

        Raises :class:`SingularMatrixError` when the stacked matrix (i.e.
        any single block) cannot be factorised.
        """
        if len(blocks) != self.count:
            raise AnalysisError(
                f"expected {self.count} blocks, got {len(blocks)}")
        n = self.block_size
        if sparse_available():
            row_parts, col_parts, val_parts = [], [], []
            for index, block in enumerate(blocks):
                block = np.asarray(block, dtype=float)
                if block.shape != (n, n):
                    raise AnalysisError(
                        f"block {index} has shape {block.shape}, "
                        f"expected {(n, n)}")
                rows, cols = np.nonzero(block)
                row_parts.append(rows + index * n)
                col_parts.append(cols + index * n)
                val_parts.append(block[rows, cols])
            rows = np.concatenate(row_parts)
            cols = np.concatenate(col_parts)
            values = np.concatenate(val_parts)
            pattern = self._pattern
            if pattern is None or not pattern.matches(rows, cols):
                pattern = _CSCPattern(rows, cols, self.size)
                self._pattern = pattern
            data = np.bincount(pattern.coo_to_csc, weights=values,
                               minlength=pattern.nnz)
            matrix = _csc_matrix((data, pattern.indices, pattern.indptr),
                                 shape=(self.size, self.size))
            try:
                lu = _splu(matrix)
            except (RuntimeError, ValueError, ArithmeticError) as exc:
                raise SingularMatrixError(
                    f"stacked block-diagonal matrix cannot be factorised: "
                    f"{exc}") from exc
            self._solve = lu.solve
        else:
            stacked = np.zeros((self.size, self.size))
            for index, block in enumerate(blocks):
                block = np.asarray(block, dtype=float)
                if block.shape != (n, n):
                    raise AnalysisError(
                        f"block {index} has shape {block.shape}, "
                        f"expected {(n, n)}")
                stacked[index * n:(index + 1) * n,
                        index * n:(index + 1) * n] = block
            self._solve = make_lu_solver(stacked)

    def _require_factors(self):
        if self._solve is None:
            raise AnalysisError(
                "BlockDiagonalSystem.update() must run before solving")
        return self._solve

    def solve_all(self, rhs_blocks) -> list[np.ndarray]:
        """Solve every block against the one stacked factorisation."""
        solve = self._require_factors()
        if len(rhs_blocks) != self.count:
            raise AnalysisError(
                f"expected {self.count} right-hand sides, "
                f"got {len(rhs_blocks)}")
        stacked = np.concatenate(
            [np.asarray(rhs, dtype=float) for rhs in rhs_blocks])
        solution = solve(stacked)
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError(
                "stacked block-diagonal solution contains NaN/Inf")
        n = self.block_size
        return [solution[k * n:(k + 1) * n] for k in range(self.count)]

    def solve_block(self, index: int, rhs: np.ndarray) -> np.ndarray:
        """Solve block ``index`` alone (zero right-hand side elsewhere)."""
        solve = self._require_factors()
        if not 0 <= index < self.count:
            raise AnalysisError(f"block index {index} out of range")
        n = self.block_size
        stacked = np.zeros(self.size)
        stacked[index * n:(index + 1) * n] = np.asarray(rhs, dtype=float)
        solution = solve(stacked)[index * n:(index + 1) * n]
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError(
                "block-diagonal solution contains NaN/Inf")
        return solution


class _ScratchAssembler:
    """Assemble a builder's constant MNA matrix for a given step key.

    A linear circuit's matrix depends only on the integration
    coefficients and gmin — never on time, the solution, or the companion
    history — so a scratch state carrying just the key reproduces the
    matrix any real timestep with that key would assemble.
    """

    def __init__(self, builder: MNABuilder):
        self.builder = builder
        state = builder.new_state("tran")
        for device in builder.devices:
            device.init_state(state)
        self.state = state

    def system_for(self, key):
        c0, c1, gmin = key
        state = self.state
        state.integ_c0 = c0
        state.integ_c1 = c1
        state.gmin = gmin
        state.dt = 1.0 / c0 if c0 else 0.0
        return self.builder.assemble_constant(state)

    def matrix_for(self, key) -> np.ndarray:
        return dense_matrix(self.system_for(key))


class _WoodburyFactory:
    """Per-key nominal factorisations plus per-variant Woodbury updates."""

    def __init__(self, circuit, reference: TransientAnalysis, max_rank: int):
        self.max_rank = max_rank
        self.builder = MNABuilder(circuit, reference.options,
                                  solver_backend=reference.solver_backend)
        self.usable = self.builder.is_linear
        self._assembler = _ScratchAssembler(self.builder) if self.usable \
            else None
        self._cache: dict = {}

    def compatible(self, builder: MNABuilder) -> bool:
        """True when ``builder``'s unknown layout matches the nominal."""
        return (self.usable
                and builder.size == self.builder.size
                and builder.node_index == self.builder.node_index)

    def _nominal_for(self, key):
        entry = self._cache.get(key)
        if entry is None:
            base = self._assembler.system_for(key)
            entry = (dense_matrix(base), base.freeze_solver())
            self._cache[key] = entry
        return entry

    def hook_for(self, run: TransientRun):
        """A :attr:`TransientRun.solver_hook` serving shared solvers."""
        def hook(builder, base, key):
            try:
                nominal_dense, nominal_solve = self._nominal_for(key)
            except SingularMatrixError:
                return None
            update = low_rank_update(nominal_dense, dense_matrix(base),
                                     self.max_rank)
            if update is None:
                return None
            matrix_update, columns = update
            if len(columns) == 0:
                return nominal_solve
            try:
                return WoodburySolver(nominal_solve, matrix_update, columns)
            except SingularMatrixError:
                return None
        return hook


class _StackedFactory:
    """One block-diagonal factorisation per step key for a variant group."""

    def __init__(self, runs: list[TransientRun]):
        self.runs = runs
        self.system = BlockDiagonalSystem(runs[0].builder.size, len(runs))
        self._assemblers = {id(run): _ScratchAssembler(run.builder)
                            for run in runs}
        self._solvers: dict = {}

    def _build(self, key, position: int, base) -> list:
        blocks = []
        for index, run in enumerate(self.runs):
            if index == position:
                # The requesting variant's matrix is already assembled.
                blocks.append(dense_matrix(base))
            else:
                blocks.append(self._assemblers[id(run)].matrix_for(key))
        self.system.update(blocks)
        system = self.system
        return [(lambda rhs, _index=index: system.solve_block(_index, rhs))
                for index in range(len(self.runs))]

    def hook_for(self, run: TransientRun):
        """A :attr:`TransientRun.solver_hook` serving block solves."""
        position = self.runs.index(run)

        def hook(builder, base, key):
            solvers = self._solvers.get(key)
            if solvers is None:
                try:
                    solvers = self._build(key, position, base)
                except SingularMatrixError:
                    # One singular block poisons the stacked factorisation;
                    # fall back to per-variant factorisations for this key.
                    return None
                self._solvers[key] = solvers
            return solvers[position]
        return hook


class BatchedTransient:
    """Advance K fault-variant transients in lockstep.

    ``analyses`` are fully configured :class:`TransientAnalysis` instances
    (one per variant).  Fixed-step variants advance exactly one print row
    per :meth:`TransientRun.advance`; adaptive variants integrate on their
    own step/order grid and may emit several print rows per advance, so
    the lockstep loop only advances a variant whose ``output_index`` still
    trails the shared print row.  All variants must produce the same print
    grid (same ``tstop`` / ``tstep``), which a campaign guarantees by
    construction.

    ``numerics="exact"`` (default) keeps every variant's arithmetic
    identical to a serial run.  ``numerics="shared"`` additionally serves
    the linear sub-steps of eligible variants from shared factorisations:
    variants whose unknown layout matches ``nominal_circuit`` and whose
    matrix delta touches at most ``max_shared_rank`` columns go through
    :class:`WoodburySolver`; remaining same-layout linear groups share a
    :class:`BlockDiagonalSystem`.  Shared numerics is float-exact in
    theory but not bit-exact (different operation order), so campaigns
    verify it at verdict level.

    After :meth:`run`, each variant ended in exactly one of three ways:
    a finished :class:`TransientRun` (in :attr:`runs`), an early abort
    (index in :attr:`aborted`, partial run still in :attr:`runs`), or an
    eviction (exception in :attr:`errors`, slot in :attr:`runs` is
    ``None``).
    """

    def __init__(self, analyses, numerics: str = "exact",
                 nominal_circuit=None, max_shared_rank: int = 4):
        """Validate the batch; simulation starts at :meth:`begin`/:meth:`run`."""
        analyses = list(analyses)
        if not analyses:
            raise AnalysisError("a batched transient needs >= 1 variant")
        if numerics not in NUMERICS_MODES:
            raise AnalysisError(
                f"unknown batched numerics mode {numerics!r} "
                f"(choose from {NUMERICS_MODES})")
        self.analyses = analyses
        self.numerics = numerics
        self.nominal_circuit = nominal_circuit
        self.max_shared_rank = int(max_shared_rank)
        #: Per-variant :class:`TransientRun` (``None`` once evicted).
        self.runs: list[TransientRun | None] = [None] * len(analyses)
        #: Variant index → the exception that evicted it.
        self.errors: dict[int, Exception] = {}
        #: Variant indices stopped early by the observer.
        self.aborted: set[int] = set()
        #: Shared print grid (after :meth:`begin`).
        self.times: np.ndarray | None = None
        self._solves_shared_evicted = 0
        self._begun = False

    @property
    def width(self) -> int:
        """Number of variants in the batch."""
        return len(self.analyses)

    @property
    def solves_shared(self) -> int:
        """Linear solves served by shared factorisations, batch-wide."""
        return self._solves_shared_evicted + sum(
            run.solves_shared for run in self.runs if run is not None)

    def begin(self) -> "BatchedTransient":
        """Solve every variant's initial state and wire shared numerics.

        A variant whose initial solve diverges is evicted immediately
        (recorded in :attr:`errors`); its siblings are unaffected.
        """
        grid = None
        for index, analysis in enumerate(self.analyses):
            try:
                run = analysis.start()
            except (ConvergenceError, SingularMatrixError) as exc:
                self.errors[index] = exc
                continue
            if grid is None:
                grid = run.times
            elif not np.array_equal(run.times, grid):
                raise AnalysisError(
                    "batched variants must share one print grid "
                    f"(variant {index} disagrees)")
            self.runs[index] = run
        self.times = grid
        if self.numerics == "shared":
            self._install_shared()
        self._begun = True
        return self

    def _install_shared(self) -> None:
        linear = [index for index, run in enumerate(self.runs)
                  if run is not None and run.builder.is_linear]
        if not linear:
            return
        factory = None
        if self.nominal_circuit is not None:
            reference = self.analyses[linear[0]]
            factory = _WoodburyFactory(self.nominal_circuit, reference,
                                       self.max_shared_rank)
        leftover: list[int] = []
        for index in linear:
            run = self.runs[index]
            if factory is not None and factory.compatible(run.builder):
                run.solver_hook = factory.hook_for(run)
            else:
                leftover.append(index)
        # Same-layout variants without a usable nominal share one
        # block-diagonal factorisation per step key instead.
        groups: dict = {}
        for index in leftover:
            builder = self.runs[index].builder
            layout = (builder.size, tuple(builder.node_index))
            groups.setdefault(layout, []).append(index)
        for members in groups.values():
            if len(members) < 2:
                continue
            stacked = _StackedFactory([self.runs[index]
                                       for index in members])
            for index in members:
                self.runs[index].solver_hook = stacked.hook_for(
                    self.runs[index])

    def _evict(self, index: int, error: Exception) -> None:
        run = self.runs[index]
        if run is not None:
            self._solves_shared_evicted += run.solves_shared
        self.errors[index] = error
        self.runs[index] = None

    def run(self, observe=None) -> "BatchedTransient":
        """Drive every variant to completion, eviction, or early abort.

        ``observe(print_index, live)`` — when given — is called after each
        print row lands (including row 0, the initial state), with the
        sorted list of live variant indices; any indices it returns are
        stopped early (recorded in :attr:`aborted`, their partial
        :class:`TransientRun` kept for statistics).  A variant raising
        :class:`ConvergenceError`/:class:`SingularMatrixError` mid-batch
        (including the ``dt_min`` floor's ``TransientError``) is evicted
        into :attr:`errors`; any other exception propagates, as it would
        from a serial run.
        """
        if not self._begun:
            self.begin()
        live = {index for index, run in enumerate(self.runs)
                if run is not None}
        if observe is not None and live:
            self._stop(live, observe(0, sorted(live)))
        print_index = 1
        while live:
            for index in sorted(live):
                # An adaptive variant may have emitted several print rows
                # in one advance; only poke it while it still trails the
                # shared print row (fixed variants always advance here).
                if self.runs[index].output_index > print_index:
                    continue
                try:
                    self.runs[index].advance()
                except (ConvergenceError, SingularMatrixError) as exc:
                    self._evict(index, exc)
                    live.discard(index)
            if observe is not None and live:
                self._stop(live, observe(print_index, sorted(live)))
            # An exhausted adaptive variant may still hold print rows the
            # observer has not been shown (one advance can emit many rows
            # ahead of the lockstep cursor); keep it live — idle but
            # observed — until the cursor has swept its whole grid.
            grid_done = print_index + 1 >= len(self.times)
            live = {index for index in live
                    if not (self.runs[index].exhausted and grid_done)}
            print_index += 1
        return self

    def _stop(self, live: set, stops) -> None:
        for index in set(stops or ()):
            if index in live:
                live.discard(index)
                self.aborted.add(index)
