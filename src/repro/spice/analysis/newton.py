"""Newton-Raphson solution of the nonlinear MNA system."""

from __future__ import annotations

import numpy as np

from ...errors import ConvergenceError, SingularMatrixError
from .mna import MNABuilder, SimState


def solve_newton(builder: MNABuilder, state: SimState,
                 x0: np.ndarray | None = None,
                 max_iterations: int | None = None) -> np.ndarray:
    """Iterate the linearised MNA system to convergence.

    The iteration-constant part of the system (linear devices, sources at
    the present time, companion history) is assembled once per call through
    :meth:`MNABuilder.assemble_constant`; each iteration only re-stamps the
    nonlinear linearisations on top of that base.  Fully linear circuits are
    solved with a single factorisation and no iteration.  Every linear solve
    goes through the builder's solver backend (dense LAPACK or sparse
    SuperLU, see :mod:`repro.spice.analysis.backends`).

    Parameters
    ----------
    builder:
        Bound circuit.
    state:
        Simulation state; ``state.x`` is updated in place with each iterate
        and holds the converged solution on return.
        ``state.last_newton_iterations`` reports the number of iterations
        spent (1 for the linear bypass).
    x0:
        Initial guess (defaults to the current ``state.x``).
    max_iterations:
        Iteration limit (defaults to ``options.itl1``).

    Raises
    ------
    ConvergenceError
        If the iteration limit is exceeded.
    SingularMatrixError
        If the matrix cannot be factorised at the first iteration.
    """
    options = builder.options
    limit = max_iterations if max_iterations is not None else options.itl1
    if x0 is not None:
        state.x = np.array(x0, dtype=float, copy=True)
    has_nonlinear = bool(builder.nonlinear_devices)
    num_nodes = builder.num_nodes

    base = builder.assemble_constant(state)

    if not has_nonlinear:
        # Linear bypass: the system does not depend on the iterate, so a
        # single direct solve is already the fixed point of the iteration.
        state.limited = False
        state.x = base.solve()
        state.last_newton_iterations = 1
        return state.x

    builder.begin_iterations()
    try:
        previous = state.x.copy()
        for iteration in range(1, limit + 1):
            system = builder.build_iteration(state)
            try:
                solution = system.solve()
            except SingularMatrixError:
                if iteration == 1:
                    raise
                # A transiently singular linearisation: fall back to a damped
                # retry from the previous iterate.
                state.x = 0.5 * (state.x + previous)
                continue

            delta = solution - state.x
            # Damp excessive node-voltage excursions to keep the device
            # linearisations in a sane region.
            max_step = options.max_voltage_step
            if max_step > 0.0 and num_nodes > 0:
                worst = np.max(np.abs(delta[:num_nodes])) if num_nodes else 0.0
                if worst > max_step:
                    delta *= max_step / worst
                    solution = state.x + delta

            tolerance = np.empty_like(solution)
            reference = np.maximum(np.abs(solution), np.abs(state.x))
            tolerance[:num_nodes] = (options.reltol * reference[:num_nodes]
                                     + options.vntol)
            tolerance[num_nodes:] = (options.reltol * reference[num_nodes:]
                                     + options.abstol)
            converged = (bool(np.all(np.abs(delta) <= tolerance))
                         and not state.limited)

            previous = state.x.copy()
            state.x = solution

            if converged and iteration > 1:
                state.last_newton_iterations = iteration
                return state.x
    finally:
        builder.end_iterations()

    state.last_newton_iterations = limit
    worst_index = int(np.argmax(np.abs(state.x - previous)))
    worst_node = None
    if worst_index < num_nodes:
        worst_node = builder.node_names[worst_index]
    raise ConvergenceError(
        f"Newton iteration did not converge in {limit} iterations "
        f"(mode={state.mode}, time={state.time:g})",
        iterations=limit, worst_node=worst_node)
