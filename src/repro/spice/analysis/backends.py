"""Pluggable linear-solver backends for the MNA kernel.

Every Newton iteration and every linear-bypass timestep of the transient
driver ends in one linear solve of the MNA system.  This module makes the
*representation* of that system — and the factorisation used to solve it —
a pluggable choice:

:class:`DenseSolverBackend`
    The historical behaviour: a dense ``numpy`` matrix
    (:class:`MNASystem`, defined here) solved with LAPACK
    ``getrf``/``getrs`` (``scipy.linalg.lu_factor`` when available).  The
    O(n^3) factorisation is unbeatable below a few hundred unknowns, where
    the constant factors of sparse bookkeeping dominate.

:class:`SparseSolverBackend`
    A ``scipy.sparse`` path built for the large circuits the ROADMAP flags:
    device stamps are accumulated as COO triplets
    (:class:`SparseMNASystem`), assembled into one CSC matrix, and solved
    with SuperLU (``scipy.sparse.linalg.splu``).  The COO→CSC scatter
    pattern — the symbolic part of the assembly — is computed once and
    reused for every subsequent assembly with the same stamp structure,
    which holds across all Newton iterations and timesteps of a run.
    :meth:`SparseMNASystem.freeze_solver` additionally caches a complete
    ``splu`` factorisation, which the transient driver keys by step size on
    the linear-bypass path.

Backend selection is automatic by matrix size (:func:`select_backend` with
:data:`SPARSE_AUTO_THRESHOLD`) and can be forced per analysis via the
``solver_backend`` argument of :class:`~repro.spice.analysis.mna.MNABuilder`,
:class:`~repro.spice.analysis.transient.TransientAnalysis` and the campaign
layer (``CampaignSettings.solver_backend``).  The choice actually taken is
recorded in ``TransientResult.stats["solver_backend"]``.

Both backends expose the same system interface consumed by the device
stamps (:class:`MNASystem` is the reference implementation):
``add``/``add_rhs`` for scalar stamps, ``scatter``/``scatter_rhs`` for the
vectorized banks, ``add_diagonal`` for gmin, ``clear``, ``copy_from``,
``solve`` and ``freeze_solver``.  The scatter methods are the **scatter
seam**: direct ``np.add.at`` accumulation onto system matrices is allowed
only inside this module (the custom checker ``tools/repro_lint.py``
enforces that repo invariant), so alternative representations can rely on
every stamp flowing through the interface above.
"""

from __future__ import annotations

import numpy as np

from ...errors import AnalysisError, SingularMatrixError

try:  # pragma: no cover - exercised through make_lu_solver
    from scipy.linalg import lu_factor as _lu_factor, lu_solve as _lu_solve
except ImportError:  # pragma: no cover
    _lu_factor = _lu_solve = None

try:  # pragma: no cover - exercised through the sparse backend tests
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover
    _csc_matrix = _splu = None

#: Smallest number of MNA unknowns for which ``auto`` selection picks the
#: sparse backend.  Below this the dense LAPACK path wins on constant
#: factors (measured with ``benchmarks/bench_kernel_scaling.py``: the dense
#: linear bypass is still ahead at ~64 unknowns and clearly behind at ~256).
SPARSE_AUTO_THRESHOLD = 160

#: Recognised values for every ``solver_backend`` argument in the stack.
BACKEND_CHOICES = ("auto", "dense", "sparse")


def sparse_available() -> bool:
    """True when ``scipy.sparse`` (and SuperLU) can be imported."""
    return _splu is not None


def make_lu_solver(matrix: np.ndarray):
    """Factorise ``matrix`` once and return ``solve(rhs) -> x``.

    Uses a cached LU decomposition when SciPy is available and falls back to
    a plain dense solve otherwise.  The returned callable raises
    :class:`SingularMatrixError` on singular or non-finite systems.
    """
    if _lu_factor is not None:
        try:
            lu = _lu_factor(matrix)
        except (ValueError, np.linalg.LinAlgError) as exc:
            raise SingularMatrixError(f"MNA matrix cannot be factorised: {exc}") from exc

        def solve(rhs: np.ndarray) -> np.ndarray:
            solution = _lu_solve(lu, rhs)
            if not np.all(np.isfinite(solution)):
                raise SingularMatrixError("MNA solution contains NaN/Inf")
            return solution

        return solve

    frozen = np.array(matrix, copy=True)

    def solve(rhs: np.ndarray) -> np.ndarray:
        try:
            solution = np.linalg.solve(frozen, rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(f"MNA matrix is singular: {exc}") from exc
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("MNA solution contains NaN/Inf")
        return solution

    return solve


class MNASystem:
    """Dense MNA matrix and right-hand side with ground-aware stamping.

    This is the reference implementation of the system interface shared by
    all solver backends: scalar stamps go through :meth:`add`/:meth:`add_rhs`,
    the vectorized device banks go through :meth:`scatter`/:meth:`scatter_rhs`
    — the only place device contributions may hit the matrix memory directly
    (``np.add.at`` lives here and nowhere else; ``tools/repro_lint.py``
    enforces it) — and the solver side is :meth:`solve` (one-shot) or
    :meth:`freeze_solver` (cached factorisation for the linear-bypass path).
    """

    def __init__(self, size: int, dtype=float):
        self.size = size
        self.matrix = np.zeros((size, size), dtype=dtype)
        self.rhs = np.zeros(size, dtype=dtype)

    def clear(self) -> None:
        self.matrix[:, :] = 0.0
        self.rhs[:] = 0.0

    def add(self, row: int, col: int, value) -> None:
        """Add ``value`` at (row, col); indices of -1 refer to ground and are
        silently dropped."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def scatter(self, rows: np.ndarray, cols: np.ndarray,
                values: np.ndarray) -> None:
        """Accumulate ``values`` at ``(rows[k], cols[k])`` (duplicates sum).

        Ground entries must already be dropped; the banks precompute their
        index maps that way.
        """
        np.add.at(self.matrix, (rows, cols), values)

    def scatter_rhs(self, rows: np.ndarray, values: np.ndarray) -> None:
        np.add.at(self.rhs, rows, values)

    def add_diagonal(self, indices: np.ndarray, value: float) -> None:
        """Add ``value`` on the diagonal slots ``indices`` (gmin stamp)."""
        self.matrix[indices, indices] += value

    def copy_from(self, other: "MNASystem") -> None:
        """Become a copy of ``other`` (matrix and right-hand side)."""
        np.copyto(self.matrix, other.matrix)
        np.copyto(self.rhs, other.rhs)

    def solve(self) -> np.ndarray:
        """Solve the linear system, raising :class:`SingularMatrixError` on a
        singular or numerically unusable matrix."""
        try:
            solution = np.linalg.solve(self.matrix, self.rhs)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(f"MNA matrix is singular: {exc}") from exc
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("MNA solution contains NaN/Inf")
        return solution

    def freeze_solver(self):
        """Factorise the present matrix once and return ``solve(rhs) -> x``."""
        return make_lu_solver(self.matrix)


class _CSCPattern:
    """Frozen symbolic assembly pattern: COO entry order → CSC slots.

    Built once from the (row, col) sequence of an assembly and reused for
    every later assembly that produces the same sequence — i.e. the
    numeric phase of each Newton iteration is one ``np.bincount`` scatter
    instead of a fresh sort.
    """

    __slots__ = ("rows", "cols", "indptr", "indices", "coo_to_csc", "nnz")

    def __init__(self, rows: np.ndarray, cols: np.ndarray, size: int):
        self.rows = rows
        self.cols = cols
        # CSC order: sort by column, rows ascending within each column.
        order = np.lexsort((rows, cols))
        sorted_rows = rows[order]
        sorted_cols = cols[order]
        first = np.empty(len(rows), dtype=bool)
        if len(rows):
            first[0] = True
            first[1:] = ((sorted_rows[1:] != sorted_rows[:-1])
                         | (sorted_cols[1:] != sorted_cols[:-1]))
        group = np.cumsum(first) - 1
        self.nnz = int(group[-1] + 1) if len(rows) else 0
        self.coo_to_csc = np.empty(len(rows), dtype=np.intp)
        self.coo_to_csc[order] = group
        self.indices = sorted_rows[first].astype(np.int32, copy=False)
        counts = np.bincount(sorted_cols[first], minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr

    def matches(self, rows: np.ndarray, cols: np.ndarray) -> bool:
        return (len(rows) == len(self.rows)
                and np.array_equal(rows, self.rows)
                and np.array_equal(cols, self.cols))


class SparseMNASystem:
    """MNA system accumulated as COO triplets and solved with SuperLU.

    Scalar stamps (``add``) append to Python lists; the vectorized device
    banks (``scatter``) append whole index/value array chunks.  ``solve``
    concatenates everything, folds duplicates into CSC slots through the
    cached :class:`_CSCPattern` and factorises with ``splu``.  The right-
    hand side stays a dense vector throughout.

    Only the real-valued analyses use this class; the complex AC system is
    always dense (it is assembled once per frequency point and the circuit
    sizes involved are small).
    """

    def __init__(self, size: int, dtype=float):
        if _splu is None:
            raise AnalysisError(
                "the sparse solver backend requires scipy.sparse")
        if dtype is not float:
            raise AnalysisError(
                "SparseMNASystem only supports real-valued systems")
        self.size = size
        self.rhs = np.zeros(size)
        self._scalar_rows: list[int] = []
        self._scalar_cols: list[int] = []
        self._scalar_vals: list[float] = []
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._pattern: _CSCPattern | None = None

    # -- stamping interface (mirrors MNASystem) -------------------------
    def clear(self) -> None:
        """Drop all accumulated stamps; the symbolic pattern cache stays."""
        self._scalar_rows.clear()
        self._scalar_cols.clear()
        self._scalar_vals.clear()
        self._chunks.clear()
        self.rhs[:] = 0.0

    def add(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0:
            return
        self._scalar_rows.append(row)
        self._scalar_cols.append(col)
        self._scalar_vals.append(value)

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def scatter(self, rows: np.ndarray, cols: np.ndarray,
                values: np.ndarray) -> None:
        self._chunks.append((rows, cols, values))

    def scatter_rhs(self, rows: np.ndarray, values: np.ndarray) -> None:
        np.add.at(self.rhs, rows, values)

    def add_diagonal(self, indices: np.ndarray, value: float) -> None:
        self._chunks.append((indices, indices,
                             np.full(len(indices), value)))

    def copy_from(self, other: "SparseMNASystem") -> None:
        """Become a copy of ``other``'s stamps (chunk arrays are shared —
        the banks allocate fresh value arrays on every stamp)."""
        self._scalar_rows = list(other._scalar_rows)
        self._scalar_cols = list(other._scalar_cols)
        self._scalar_vals = list(other._scalar_vals)
        self._chunks = list(other._chunks)
        np.copyto(self.rhs, other.rhs)

    # -- assembly and solution ------------------------------------------
    def _assemble(self):
        """Fold the accumulated COO triplets into one CSC matrix."""
        row_parts = [np.asarray(self._scalar_rows, dtype=np.intp)]
        col_parts = [np.asarray(self._scalar_cols, dtype=np.intp)]
        val_parts = [np.asarray(self._scalar_vals, dtype=float)]
        for rows, cols, values in self._chunks:
            row_parts.append(np.asarray(rows, dtype=np.intp))
            col_parts.append(np.asarray(cols, dtype=np.intp))
            val_parts.append(np.asarray(values, dtype=float))
        rows = np.concatenate(row_parts)
        cols = np.concatenate(col_parts)
        values = np.concatenate(val_parts)
        pattern = self._pattern
        if pattern is None or not pattern.matches(rows, cols):
            # First assembly (or a structural change, which regular device
            # stamping never produces): compute the symbolic pattern.
            pattern = _CSCPattern(rows, cols, self.size)
            self._pattern = pattern
        data = np.bincount(pattern.coo_to_csc, weights=values,
                           minlength=pattern.nnz)
        return _csc_matrix((data, pattern.indices, pattern.indptr),
                           shape=(self.size, self.size))

    def _factorize(self):
        matrix = self._assemble()
        try:
            return _splu(matrix)
        except (RuntimeError, ValueError, ArithmeticError) as exc:
            raise SingularMatrixError(
                f"sparse MNA matrix cannot be factorised: {exc}") from exc

    def solve(self) -> np.ndarray:
        """Assemble, factorise and solve for the present right-hand side."""
        lu = self._factorize()
        solution = lu.solve(self.rhs)
        if not np.all(np.isfinite(solution)):
            raise SingularMatrixError("sparse MNA solution contains NaN/Inf")
        return solution

    def freeze_solver(self):
        """Factorise the present matrix once and return ``solve(rhs) -> x``.

        The returned callable owns the ``splu`` object; the transient
        driver caches one per distinct step size on the linear-bypass path.
        """
        lu = self._factorize()

        def solve(rhs: np.ndarray) -> np.ndarray:
            solution = lu.solve(rhs)
            if not np.all(np.isfinite(solution)):
                raise SingularMatrixError(
                    "sparse MNA solution contains NaN/Inf")
            return solution

        return solve


class SolverBackend:
    """Factory for the MNA system representation of one analysis."""

    #: Identifier recorded in ``TransientResult.stats["solver_backend"]``.
    name = "?"

    def create_system(self, size: int, dtype=float):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class DenseSolverBackend(SolverBackend):
    """Dense numpy matrix + LAPACK LU (the historical kernel)."""

    name = "dense"

    def create_system(self, size: int, dtype=float) -> MNASystem:
        return MNASystem(size, dtype)


class SparseSolverBackend(SolverBackend):
    """scipy.sparse CSC assembly + SuperLU factorisation."""

    name = "sparse"

    def __init__(self):
        if not sparse_available():
            raise AnalysisError(
                "the sparse solver backend requires scipy.sparse")

    def create_system(self, size: int, dtype=float) -> SparseMNASystem:
        return SparseMNASystem(size, dtype)


def select_backend(size: int, choice: str | None = None) -> SolverBackend:
    """Resolve a backend for a system of ``size`` unknowns.

    ``choice`` is ``"auto"`` (or ``None``), ``"dense"`` or ``"sparse"``.
    ``auto`` picks sparse at or above :data:`SPARSE_AUTO_THRESHOLD`
    unknowns when scipy.sparse is importable, dense otherwise; ``sparse``
    raises :class:`~repro.errors.AnalysisError` when scipy.sparse is
    missing rather than silently degrading.
    """
    choice = "auto" if choice is None else str(choice).lower()
    if choice not in BACKEND_CHOICES:
        raise AnalysisError(
            f"unknown solver backend {choice!r}; expected one of "
            f"{', '.join(BACKEND_CHOICES)}")
    if choice == "dense":
        return DenseSolverBackend()
    if choice == "sparse":
        return SparseSolverBackend()
    if sparse_available() and size >= SPARSE_AUTO_THRESHOLD:
        return SparseSolverBackend()
    return DenseSolverBackend()


__all__ = [
    "BACKEND_CHOICES",
    "SPARSE_AUTO_THRESHOLD",
    "DenseSolverBackend",
    "MNASystem",
    "SolverBackend",
    "SparseMNASystem",
    "SparseSolverBackend",
    "make_lu_solver",
    "select_backend",
    "sparse_available",
]
