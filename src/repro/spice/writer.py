"""Serialise a :class:`~repro.spice.netlist.Circuit` back to netlist text.

AnaFAULT's fault injection conceptually works by *preprocessing the original
input file* (section V of the paper); round-tripping circuits through the
writer and parser keeps that workflow available and is exercised by the test
suite to guarantee the two stay consistent.
"""

from __future__ import annotations

from ..errors import NetlistError
from .netlist import Circuit, Model
from .devices import (
    Capacitor,
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledSwitch,
    VoltageControlledVoltageSource,
    VoltageSource,
)


def _format_model(model: Model) -> str:
    params = " ".join(f"{k}={v:g}" for k, v in sorted(model.params.items()))
    return f".model {model.name} {model.kind} {params}".rstrip()


def _format_source(device) -> str:
    text = f"{device.name} {device.nodes[0]} {device.nodes[1]} {device.shape.spice_text()}"
    if device.ac_magnitude:
        text += f" AC {device.ac_magnitude:g} {device.ac_phase:g}"
    return text


def device_card(device) -> str:
    """Return the netlist card of a single device."""
    nodes = device.nodes
    if isinstance(device, Resistor):
        return f"{device.name} {nodes[0]} {nodes[1]} {device.resistance:g}"
    if isinstance(device, Capacitor):
        card = f"{device.name} {nodes[0]} {nodes[1]} {device.capacitance:g}"
        if device.initial_voltage is not None:
            card += f" ic={device.initial_voltage:g}"
        return card
    if isinstance(device, Inductor):
        card = f"{device.name} {nodes[0]} {nodes[1]} {device.inductance:g}"
        if device.initial_current is not None:
            card += f" ic={device.initial_current:g}"
        return card
    if isinstance(device, (VoltageSource, CurrentSource)):
        return _format_source(device)
    if isinstance(device, Diode):
        return (f"{device.name} {nodes[0]} {nodes[1]} {device.model_name} "
                f"{device.area:g}")
    if isinstance(device, Mosfet):
        card = (f"{device.name} {nodes[0]} {nodes[1]} {nodes[2]} {nodes[3]} "
                f"{device.model_name} w={device.w:g} l={device.l:g}")
        if device.ad:
            card += f" ad={device.ad:g}"
        if device.as_:
            card += f" as={device.as_:g}"
        if device.pd:
            card += f" pd={device.pd:g}"
        if device.ps:
            card += f" ps={device.ps:g}"
        if device.multiplier != 1.0:
            card += f" m={device.multiplier:g}"
        return card
    if isinstance(device, VoltageControlledVoltageSource):
        return (f"{device.name} {nodes[0]} {nodes[1]} {nodes[2]} {nodes[3]} "
                f"{device.gain:g}")
    if isinstance(device, VoltageControlledCurrentSource):
        return (f"{device.name} {nodes[0]} {nodes[1]} {nodes[2]} {nodes[3]} "
                f"{device.transconductance:g}")
    if isinstance(device, CurrentControlledCurrentSource):
        return (f"{device.name} {nodes[0]} {nodes[1]} {device.control_source} "
                f"{device.gain:g}")
    if isinstance(device, CurrentControlledVoltageSource):
        return (f"{device.name} {nodes[0]} {nodes[1]} {device.control_source} "
                f"{device.transresistance:g}")
    if isinstance(device, VoltageControlledSwitch):
        return (f"{device.name} {nodes[0]} {nodes[1]} {nodes[2]} {nodes[3]} "
                f"{device.model_name}")
    raise NetlistError(
        f"cannot serialise device of type {type(device).__name__}")


def write_netlist(circuit: Circuit, analyses: list[str] | None = None) -> str:
    """Serialise a circuit (and optional analysis cards) to netlist text."""
    lines = [circuit.title or "* untitled circuit"]
    for model in circuit.models.values():
        lines.append(_format_model(model))
    for device in circuit.devices:
        lines.append(device_card(device))
    for card in analyses or []:
        lines.append(card if card.startswith(".") else f".{card}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_netlist_file(circuit: Circuit, path,
                       analyses: list[str] | None = None) -> None:
    """Write the netlist of ``circuit`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_netlist(circuit, analyses))
