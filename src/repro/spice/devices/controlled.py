"""Linear controlled sources (E, G, F, H elements)."""

from __future__ import annotations

from ...errors import NetlistError
from ...units import parse_value
from .base import Device, stamp_vccs


class VoltageControlledVoltageSource(Device):
    """E element: ``E<name> out+ out- in+ in- gain``."""

    PREFIX = "E"
    NUM_TERMINALS = 4

    def __init__(self, name, out_pos, out_neg, in_pos, in_neg, gain):
        super().__init__(name, [out_pos, out_neg, in_pos, in_neg])
        self.gain = parse_value(gain)

    def branch_count(self) -> int:
        return 1

    def _stamp_common(self, system) -> None:
        op, on, ip, inn = self._idx
        br = self.branch_index
        system.add(op, br, 1.0)
        system.add(on, br, -1.0)
        system.add(br, op, 1.0)
        system.add(br, on, -1.0)
        system.add(br, ip, -self.gain)
        system.add(br, inn, self.gain)

    def stamp(self, system, state) -> None:
        self._stamp_common(system)

    def stamp_ac(self, system, state) -> None:
        self._stamp_common(system)


class VoltageControlledCurrentSource(Device):
    """G element: ``G<name> out+ out- in+ in- transconductance``."""

    PREFIX = "G"
    NUM_TERMINALS = 4

    def __init__(self, name, out_pos, out_neg, in_pos, in_neg, transconductance):
        super().__init__(name, [out_pos, out_neg, in_pos, in_neg])
        self.transconductance = parse_value(transconductance)

    def stamp(self, system, state) -> None:
        op, on, ip, inn = self._idx
        stamp_vccs(system, op, on, ip, inn, self.transconductance)

    def stamp_ac(self, system, state) -> None:
        self.stamp(system, state)


class CurrentControlledCurrentSource(Device):
    """F element: ``F<name> out+ out- vname gain``.

    The controlling current is the branch current of voltage source
    ``vname``.
    """

    PREFIX = "F"
    NUM_TERMINALS = 2

    def __init__(self, name, out_pos, out_neg, control_source: str, gain):
        super().__init__(name, [out_pos, out_neg])
        if not control_source:
            raise NetlistError(f"F element {name!r} needs a controlling source")
        self.control_source = str(control_source)
        self.gain = parse_value(gain)
        self._control_branch = -1

    def prepare(self, circuit) -> None:
        control = circuit.device(self.control_source)
        if control.branch_count() < 1:
            raise NetlistError(
                f"controlling element {self.control_source!r} of {self.name!r} "
                "has no branch current")
        self._control = control

    def _stamp_common(self, system) -> None:
        op, on = self._idx
        br = self._control.branch_index
        system.add(op, br, self.gain)
        system.add(on, br, -self.gain)

    def stamp(self, system, state) -> None:
        self._stamp_common(system)

    def stamp_ac(self, system, state) -> None:
        self._stamp_common(system)


class CurrentControlledVoltageSource(Device):
    """H element: ``H<name> out+ out- vname transresistance``."""

    PREFIX = "H"
    NUM_TERMINALS = 2

    def __init__(self, name, out_pos, out_neg, control_source: str, transresistance):
        super().__init__(name, [out_pos, out_neg])
        if not control_source:
            raise NetlistError(f"H element {name!r} needs a controlling source")
        self.control_source = str(control_source)
        self.transresistance = parse_value(transresistance)

    def branch_count(self) -> int:
        return 1

    def prepare(self, circuit) -> None:
        control = circuit.device(self.control_source)
        if control.branch_count() < 1:
            raise NetlistError(
                f"controlling element {self.control_source!r} of {self.name!r} "
                "has no branch current")
        self._control = control

    def _stamp_common(self, system) -> None:
        op, on = self._idx
        br = self.branch_index
        control_br = self._control.branch_index
        system.add(op, br, 1.0)
        system.add(on, br, -1.0)
        system.add(br, op, 1.0)
        system.add(br, on, -1.0)
        system.add(br, control_br, -self.transresistance)

    def stamp(self, system, state) -> None:
        self._stamp_common(system)

    def stamp_ac(self, system, state) -> None:
        self._stamp_common(system)
