"""Device base classes and shared stamping helpers.

Every device knows how to *stamp* itself into a modified-nodal-analysis (MNA)
system for the analysis modes supported by the simulator:

``stamp(system, state)``
    Large-signal stamp used by the operating point, DC sweep and transient
    analyses.  Nonlinear devices linearise themselves around the present
    Newton guess found in ``state.x``.
``stamp_ac(system, state)``
    Small-signal stamp used by the AC analysis.  Nonlinear devices use the
    conductances stored during the last operating-point stamp.

Node and branch matrix indices are resolved once per analysis by
:meth:`Device.bind` and :meth:`Device.assign_branches`.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import NetlistError
from ..netlist import GROUND, normalize_node


class Device:
    """Base class of all circuit elements."""

    #: SPICE netlist prefix letter (``R``, ``C``, ``M`` ...).
    PREFIX = "?"
    #: Number of terminals; subclasses with a variable count override checks.
    NUM_TERMINALS: int | None = None

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("device name must not be empty")
        self.name = str(name)
        node_list = [normalize_node(n) for n in nodes]
        if self.NUM_TERMINALS is not None and len(node_list) != self.NUM_TERMINALS:
            raise NetlistError(
                f"{type(self).__name__} {name!r} needs {self.NUM_TERMINALS} "
                f"nodes, got {len(node_list)}")
        self.nodes: list[str] = node_list
        self._idx: list[int] = []
        self._branches: list[int] = []

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def rename_node(self, old: str, new: str) -> int:
        """Rename terminal connections from ``old`` to ``new``; return count."""
        old = normalize_node(old)
        new = normalize_node(new)
        count = 0
        for position, node in enumerate(self.nodes):
            if node == old:
                self.nodes[position] = new
                count += 1
        return count

    # ------------------------------------------------------------------
    # Analysis plumbing
    # ------------------------------------------------------------------
    def prepare(self, circuit) -> None:
        """Resolve model cards and cache derived parameters.

        Called once per analysis before any stamping.  The default does
        nothing.
        """

    def branch_count(self) -> int:
        """Number of extra branch-current unknowns this device introduces."""
        return 0

    def is_nonlinear(self) -> bool:
        """True when the device requires Newton-Raphson iteration."""
        return False

    def bind(self, node_index: dict[str, int]) -> None:
        """Store the matrix row/column index of each terminal (-1 = ground)."""
        self._idx = [node_index.get(n, -1) if n != GROUND else -1
                     for n in self.nodes]

    def assign_branches(self, first: int) -> int:
        """Reserve branch-current rows starting at ``first``; return count."""
        count = self.branch_count()
        self._branches = list(range(first, first + count))
        return count

    @property
    def branch_index(self) -> int:
        """Index of the first (usually only) branch-current unknown."""
        if not self._branches:
            raise NetlistError(f"device {self.name!r} has no branch current")
        return self._branches[0]

    # ------------------------------------------------------------------
    # Dynamic state (transient history)
    # ------------------------------------------------------------------
    def init_state(self, state) -> None:
        """Initialise transient history from the initial solution."""

    def accept_timestep(self, state) -> None:
        """Commit the accepted solution of the current timestep to history."""

    # ------------------------------------------------------------------
    # Stamps
    # ------------------------------------------------------------------
    def stamp(self, system, state) -> None:
        raise NotImplementedError

    def stamp_ac(self, system, state) -> None:
        """Default small-signal stamp: nothing (open circuit)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


def stamp_conductance(system, i: int, j: int, g: float) -> None:
    """Stamp a conductance ``g`` between matrix rows ``i`` and ``j``.

    Either index may be ``-1`` to denote the ground node.
    """
    system.add(i, i, g)
    system.add(j, j, g)
    system.add(i, j, -g)
    system.add(j, i, -g)


def stamp_current_source(system, i: int, j: int, current: float) -> None:
    """Stamp an independent current ``current`` flowing from node i to node j
    through the source (i.e. it is extracted from node i and injected into
    node j)."""
    system.add_rhs(i, -current)
    system.add_rhs(j, current)


def stamp_vccs(system, out_p: int, out_n: int, in_p: int, in_n: int,
               gm: float) -> None:
    """Stamp a voltage-controlled current source of transconductance ``gm``.

    The current ``gm * (v(in_p) - v(in_n))`` flows from ``out_p`` to
    ``out_n`` inside the device (it leaves node ``out_p``).
    """
    system.add(out_p, in_p, gm)
    system.add(out_p, in_n, -gm)
    system.add(out_n, in_p, -gm)
    system.add(out_n, in_n, gm)


class CompanionCapacitor:
    """A linear capacitance stamped via its companion model.

    Used both by the explicit :class:`~repro.spice.devices.passives.Capacitor`
    device and by the MOSFET terminal capacitances.  The companion model uses
    the integration coefficients published by the transient driver in the
    simulation state (``state.integ_c0``, ``state.integ_c1``).
    """

    def __init__(self, capacitance: float):
        self.capacitance = float(capacitance)
        self.v_prev = 0.0
        self.i_prev = 0.0

    def init_state(self, v_initial: float) -> None:
        self.v_prev = v_initial
        self.i_prev = 0.0

    def stamp_tran(self, system, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        geq = state.integ_c0 * self.capacitance
        ieq = -(geq * self.v_prev + state.integ_c1 * self.i_prev)
        stamp_conductance(system, pos, neg, geq)
        # Branch current i = geq*v + ieq flows from pos to neg.
        stamp_current_source(system, pos, neg, ieq)

    def stamp_ac(self, system, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        admittance = 1j * state.omega * self.capacitance
        stamp_conductance(system, pos, neg, admittance)

    def accept(self, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        v_now = state.v(pos) - state.v(neg)
        geq = state.integ_c0 * self.capacitance
        ieq = -(geq * self.v_prev + state.integ_c1 * self.i_prev)
        self.i_prev = geq * v_now + ieq
        self.v_prev = v_now

    def current(self, state, pos: int, neg: int) -> float:
        """Current through the capacitor at the present (accepted) solution."""
        if self.capacitance <= 0.0:
            return 0.0
        return self.i_prev
