"""Device base classes and shared stamping helpers.

Every device knows how to *stamp* itself into a modified-nodal-analysis (MNA)
system for the analysis modes supported by the simulator:

``stamp(system, state)``
    Large-signal stamp used by the operating point, DC sweep and transient
    analyses.  Nonlinear devices linearise themselves around the present
    Newton guess found in ``state.x``.
``stamp_ac(system, state)``
    Small-signal stamp used by the AC analysis.  Nonlinear devices use the
    conductances stored during the last operating-point stamp.

The Newton fast path additionally splits the large-signal stamp in two:

``stamp_constant(system, state)``
    Contributions that do not depend on the Newton iterate ``state.x`` and
    therefore stay fixed across all iterations of one solve (linear device
    stamps, time-dependent source values, companion-model history).
``stamp_iteration(system, state)``
    Contributions that must be re-linearised around the present iterate
    (nonlinear device characteristics).

``stamp_constant + stamp_iteration + companion capacitances`` must always be
equivalent to ``stamp``; companion capacitances announced through
:meth:`Device.companion_entries` are stamped once per solve by the builder's
:class:`CompanionCapacitorBank` instead of per device.

Node and branch matrix indices are resolved once per analysis by
:meth:`Device.bind` and :meth:`Device.assign_branches`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...errors import NetlistError
from ..netlist import GROUND, normalize_node


class Device:
    """Base class of all circuit elements."""

    #: SPICE netlist prefix letter (``R``, ``C``, ``M`` ...).
    PREFIX = "?"
    #: Number of terminals; subclasses with a variable count override checks.
    NUM_TERMINALS: int | None = None
    #: True when :meth:`accept_timestep` commits nothing beyond the
    #: companion capacitances announced via :meth:`companion_entries`; the
    #: builder then handles the commit through its vectorized bank instead
    #: of calling the device.
    companion_only_accept = False
    #: Optional class implementing vectorized per-iteration stamping for all
    #: devices of this type at once (``bank_cls(devices)`` with
    #: ``stamp_iteration(system, state)`` / ``load_history()`` /
    #: ``store_history()``).  ``None`` keeps the scalar
    #: :meth:`stamp_iteration` path.
    ITERATION_BANK: type | None = None

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise NetlistError("device name must not be empty")
        self.name = str(name)
        node_list = [normalize_node(n) for n in nodes]
        if self.NUM_TERMINALS is not None and len(node_list) != self.NUM_TERMINALS:
            raise NetlistError(
                f"{type(self).__name__} {name!r} needs {self.NUM_TERMINALS} "
                f"nodes, got {len(node_list)}")
        self.nodes: list[str] = node_list
        self._idx: list[int] = []
        self._branches: list[int] = []

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def rename_node(self, old: str, new: str) -> int:
        """Rename terminal connections from ``old`` to ``new``; return count."""
        old = normalize_node(old)
        new = normalize_node(new)
        count = 0
        for position, node in enumerate(self.nodes):
            if node == old:
                self.nodes[position] = new
                count += 1
        return count

    # ------------------------------------------------------------------
    # Analysis plumbing
    # ------------------------------------------------------------------
    def prepare(self, circuit) -> None:
        """Resolve model cards and cache derived parameters.

        Called once per analysis before any stamping.  The default does
        nothing.
        """

    def branch_count(self) -> int:
        """Number of extra branch-current unknowns this device introduces."""
        return 0

    def is_nonlinear(self) -> bool:
        """True when the device requires Newton-Raphson iteration."""
        return False

    def bind(self, node_index: dict[str, int]) -> None:
        """Store the matrix row/column index of each terminal (-1 = ground)."""
        self._idx = [node_index.get(n, -1) if n != GROUND else -1
                     for n in self.nodes]

    def assign_branches(self, first: int) -> int:
        """Reserve branch-current rows starting at ``first``; return count."""
        count = self.branch_count()
        self._branches = list(range(first, first + count))
        return count

    @property
    def branch_index(self) -> int:
        """Index of the first (usually only) branch-current unknown."""
        if not self._branches:
            raise NetlistError(f"device {self.name!r} has no branch current")
        return self._branches[0]

    # ------------------------------------------------------------------
    # Dynamic state (transient history)
    # ------------------------------------------------------------------
    def init_state(self, state) -> None:
        """Initialise transient history from the initial solution."""

    def accept_timestep(self, state) -> None:
        """Commit the accepted solution of the current timestep to history."""

    # ------------------------------------------------------------------
    # Stamps
    # ------------------------------------------------------------------
    def stamp(self, system, state) -> None:
        raise NotImplementedError

    def stamp_constant(self, system, state) -> None:
        """Stamp the iteration-constant part (see module docstring).

        The default treats linear devices as fully constant and nonlinear
        devices as fully iterate-dependent.
        """
        if not self.is_nonlinear():
            self.stamp(system, state)

    def stamp_iteration(self, system, state) -> None:
        """Stamp the part that depends on the present Newton iterate."""
        if self.is_nonlinear():
            self.stamp(system, state)

    def companion_entries(self):
        """Yield ``(CompanionCapacitor, pos_index, neg_index)`` triples for
        the builder's vectorized capacitor bank.  Only valid after
        :meth:`bind`."""
        return ()

    def stamp_ac(self, system, state) -> None:
        """Default small-signal stamp: nothing (open circuit)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


def stamp_conductance(system, i: int, j: int, g: float) -> None:
    """Stamp a conductance ``g`` between matrix rows ``i`` and ``j``.

    Either index may be ``-1`` to denote the ground node.
    """
    system.add(i, i, g)
    system.add(j, j, g)
    system.add(i, j, -g)
    system.add(j, i, -g)


def stamp_current_source(system, i: int, j: int, current: float) -> None:
    """Stamp an independent current ``current`` flowing from node i to node j
    through the source (i.e. it is extracted from node i and injected into
    node j)."""
    system.add_rhs(i, -current)
    system.add_rhs(j, current)


def stamp_vccs(system, out_p: int, out_n: int, in_p: int, in_n: int,
               gm: float) -> None:
    """Stamp a voltage-controlled current source of transconductance ``gm``.

    The current ``gm * (v(in_p) - v(in_n))`` flows from ``out_p`` to
    ``out_n`` inside the device (it leaves node ``out_p``).
    """
    system.add(out_p, in_p, gm)
    system.add(out_p, in_n, -gm)
    system.add(out_n, in_p, -gm)
    system.add(out_n, in_n, gm)


class CompanionCapacitor:
    """A linear capacitance stamped via its companion model.

    Used both by the explicit :class:`~repro.spice.devices.passives.Capacitor`
    device and by the MOSFET terminal capacitances.  The companion model uses
    the integration coefficients published by the transient driver in the
    simulation state (``state.integ_c0``, ``state.integ_c1``).  For
    fixed-leading-coefficient BDF steps the driver additionally publishes
    the predictor solution/derivative vectors (``state.integ_pred_x`` /
    ``state.integ_pred_dx``); the equivalent current then comes from the
    predicted branch voltage and its derivative instead of the one-step
    ``v_prev``/``i_prev`` history, while ``geq`` stays
    ``integ_c0 * C`` — the matrix depends on the leading coefficient only,
    at every order.
    """

    def __init__(self, capacitance: float):
        self.capacitance = float(capacitance)
        self.v_prev = 0.0
        self.i_prev = 0.0

    def init_state(self, v_initial: float) -> None:
        self.v_prev = v_initial
        self.i_prev = 0.0

    def _ieq(self, state, pos: int, neg: int, geq: float) -> float:
        if state.integ_pred_x is not None:
            # BDF corrector: i = C*x' with x' = dpred + c0*(v - vpred).
            v_pred = state.pred(pos) - state.pred(neg)
            dv_pred = state.pred_d(pos) - state.pred_d(neg)
            return self.capacitance * dv_pred - geq * v_pred
        return -(geq * self.v_prev + state.integ_c1 * self.i_prev)

    def stamp_tran(self, system, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        geq = state.integ_c0 * self.capacitance
        ieq = self._ieq(state, pos, neg, geq)
        stamp_conductance(system, pos, neg, geq)
        # Branch current i = geq*v + ieq flows from pos to neg.
        stamp_current_source(system, pos, neg, ieq)

    def stamp_ac(self, system, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        admittance = 1j * state.omega * self.capacitance
        stamp_conductance(system, pos, neg, admittance)

    def accept(self, state, pos: int, neg: int) -> None:
        if self.capacitance <= 0.0:
            return
        v_now = state.v(pos) - state.v(neg)
        geq = state.integ_c0 * self.capacitance
        ieq = self._ieq(state, pos, neg, geq)
        self.i_prev = geq * v_now + ieq
        self.v_prev = v_now

    def current(self, state, pos: int, neg: int) -> float:
        """Current through the capacitor at the present (accepted) solution."""
        if self.capacitance <= 0.0:
            return 0.0
        return self.i_prev


class CompanionCapacitorBank:
    """Vectorized transient stamp of every companion capacitance at once.

    The bank precomputes the scatter index map of all capacitor stamps
    (matrix entries ``(p,p)``, ``(n,n)``, ``(p,n)``, ``(n,p)`` and the two
    RHS entries, with ground terminals dropped).  Each Newton solve then
    fills the shared MNA system with two vectorized ``system.scatter``
    calls (dense: ``np.add.at``; sparse: one appended COO chunk) instead of
    hundreds of per-device Python calls.  The individual
    :class:`CompanionCapacitor` objects remain the owners of the companion
    history (``v_prev``/``i_prev``); the bank gathers it on every stamp.
    """

    def __init__(self, entries):
        entries = [(cap, pos, neg) for cap, pos, neg in entries
                   if cap.capacitance > 0.0]
        self.caps = [cap for cap, _, _ in entries]
        self.capacitance = np.array([cap.capacitance for cap in self.caps])
        m_rows: list[int] = []
        m_cols: list[int] = []
        m_cap: list[int] = []
        m_sign: list[float] = []
        r_rows: list[int] = []
        r_cap: list[int] = []
        r_sign: list[float] = []
        for k, (_cap, pos, neg) in enumerate(entries):
            for row, col, sign in ((pos, pos, 1.0), (neg, neg, 1.0),
                                   (pos, neg, -1.0), (neg, pos, -1.0)):
                if row >= 0 and col >= 0:
                    m_rows.append(row)
                    m_cols.append(col)
                    m_cap.append(k)
                    m_sign.append(sign)
            # stamp_current_source(pos, neg, ieq): extracted at pos,
            # injected at neg.
            if pos >= 0:
                r_rows.append(pos)
                r_cap.append(k)
                r_sign.append(-1.0)
            if neg >= 0:
                r_rows.append(neg)
                r_cap.append(k)
                r_sign.append(1.0)
        self._m_index = (np.asarray(m_rows, dtype=int),
                         np.asarray(m_cols, dtype=int))
        self._m_cap = np.asarray(m_cap, dtype=int)
        self._m_sign = np.asarray(m_sign)
        self._r_rows = np.asarray(r_rows, dtype=int)
        self._r_cap = np.asarray(r_cap, dtype=int)
        self._r_sign = np.asarray(r_sign)
        pos = np.asarray([p for _, p, _ in entries], dtype=int)
        neg = np.asarray([n for _, _, n in entries], dtype=int)
        self._pos_clipped = np.maximum(pos, 0)
        self._neg_clipped = np.maximum(neg, 0)
        self._pos_grounded = pos < 0
        self._neg_grounded = neg < 0

    def __len__(self) -> int:
        return len(self.caps)

    def _history(self) -> tuple[np.ndarray, np.ndarray]:
        count = len(self.caps)
        v_prev = np.fromiter((cap.v_prev for cap in self.caps), float, count)
        i_prev = np.fromiter((cap.i_prev for cap in self.caps), float, count)
        return v_prev, i_prev

    def _ieq(self, state, geq: np.ndarray) -> np.ndarray:
        if state.integ_pred_x is not None:
            v_pred = self._gather(state.integ_pred_x)
            dv_pred = self._gather(state.integ_pred_dx)
            return self.capacitance * dv_pred - geq * v_pred
        v_prev, i_prev = self._history()
        return -(geq * v_prev + state.integ_c1 * i_prev)

    def stamp_tran(self, system, state) -> None:
        """Equivalent of calling ``CompanionCapacitor.stamp_tran`` on every
        registered capacitance."""
        if not self.caps:
            return
        geq = state.integ_c0 * self.capacitance
        ieq = self._ieq(state, geq)
        system.scatter(self._m_index[0], self._m_index[1],
                       self._m_sign * geq[self._m_cap])
        system.scatter_rhs(self._r_rows, self._r_sign * ieq[self._r_cap])

    def _gather(self, x: np.ndarray) -> np.ndarray:
        v_pos = np.where(self._pos_grounded, 0.0, x[self._pos_clipped])
        v_neg = np.where(self._neg_grounded, 0.0, x[self._neg_clipped])
        return v_pos - v_neg

    def _branch_voltages(self, state) -> np.ndarray:
        return self._gather(state.x)

    def accept(self, state) -> None:
        """Equivalent of calling ``CompanionCapacitor.accept`` on every
        registered capacitance: commit the accepted timestep to history."""
        if not self.caps:
            return
        geq = state.integ_c0 * self.capacitance
        ieq = self._ieq(state, geq)
        v_now = self._branch_voltages(state)
        i_now = geq * v_now + ieq
        for cap, v, i in zip(self.caps, v_now.tolist(), i_now.tolist()):
            cap.v_prev = v
            cap.i_prev = i
