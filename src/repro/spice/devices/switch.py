"""Voltage-controlled switch (SPICE ``S`` element).

The switch is modelled as a smoothly interpolated conductance between
``ron`` and ``roff`` controlled by the voltage across the control terminals.
A smooth transition keeps Newton-Raphson well behaved.
"""

from __future__ import annotations

import math

from ...units import parse_value
from .base import Device, stamp_conductance, stamp_current_source, stamp_vccs

DEFAULT_SWITCH_PARAMS = {
    "ron": 1.0,
    "roff": 1e9,
    "vt": 0.0,
    "vh": 0.1,
}


class VoltageControlledSwitch(Device):
    """``S<name> n+ n- control+ control- model``."""

    PREFIX = "S"
    NUM_TERMINALS = 4

    def __init__(self, name, node_pos, node_neg, control_pos, control_neg,
                 model: str = ""):
        super().__init__(name, [node_pos, node_neg, control_pos, control_neg])
        self.model_name = str(model)
        self.params = dict(DEFAULT_SWITCH_PARAMS)

    def is_nonlinear(self) -> bool:
        return True

    def prepare(self, circuit) -> None:
        params = dict(DEFAULT_SWITCH_PARAMS)
        if self.model_name:
            model = circuit.model(self.model_name)
            params.update(model.params)
        self.params = {k: parse_value(v) for k, v in params.items()}

    def _conductance(self, vc: float) -> tuple[float, float]:
        """Return (g, dg/dvc) for control voltage ``vc``."""
        g_on = 1.0 / self.params["ron"]
        g_off = 1.0 / self.params["roff"]
        vt = self.params["vt"]
        vh = max(self.params["vh"], 1e-6)
        # Logistic interpolation between off and on conductance.
        x = (vc - vt) / vh
        x = max(min(x, 60.0), -60.0)
        sigma = 1.0 / (1.0 + math.exp(-x))
        log_g = math.log(g_off) + sigma * (math.log(g_on) - math.log(g_off))
        g = math.exp(log_g)
        dsigma = sigma * (1.0 - sigma) / vh
        dg = g * (math.log(g_on) - math.log(g_off)) * dsigma
        return g, dg

    def stamp(self, system, state) -> None:
        pos, neg, cpos, cneg = self._idx
        vc = state.v(cpos) - state.v(cneg)
        v = state.v(pos) - state.v(neg)
        g, dg = self._conductance(vc)
        stamp_conductance(system, pos, neg, g)
        # The dependence of the branch current on the control voltage adds a
        # transconductance term g_c = dg * v.
        gc = dg * v
        stamp_vccs(system, pos, neg, cpos, cneg, gc)
        # Companion current so that the stamp reproduces i = g*v at the
        # current iterate.
        ieq = -gc * vc
        stamp_current_source(system, pos, neg, ieq)

    def stamp_ac(self, system, state) -> None:
        pos, neg, cpos, cneg = self._idx
        vc = state.v(cpos) - state.v(cneg)
        g, _ = self._conductance(vc)
        stamp_conductance(system, pos, neg, g)
