"""Passive two-terminal devices: resistor, capacitor, inductor."""

from __future__ import annotations

from ...errors import NetlistError
from ...units import parse_value
from .base import CompanionCapacitor, Device, stamp_conductance

#: Smallest resistance accepted before it is clamped (avoids singular MNA).
MIN_RESISTANCE = 1e-9


class Resistor(Device):
    """Linear resistor ``R<name> n+ n- value``."""

    PREFIX = "R"
    NUM_TERMINALS = 2

    def __init__(self, name: str, node_pos: str, node_neg: str, value):
        super().__init__(name, [node_pos, node_neg])
        self.resistance = parse_value(value)
        if self.resistance < 0.0:
            raise NetlistError(f"resistor {name!r} has negative value")

    @property
    def conductance(self) -> float:
        return 1.0 / max(self.resistance, MIN_RESISTANCE)

    def stamp(self, system, state) -> None:
        stamp_conductance(system, self._idx[0], self._idx[1], self.conductance)

    def stamp_ac(self, system, state) -> None:
        stamp_conductance(system, self._idx[0], self._idx[1], self.conductance)

    def current(self, state) -> float:
        """Current flowing from the positive to the negative terminal."""
        v = state.v(self._idx[0]) - state.v(self._idx[1])
        return v * self.conductance


class Capacitor(Device):
    """Linear capacitor ``C<name> n+ n- value [ic=v0]``.

    Open circuit in DC; companion model in transient; ``jwC`` in AC.
    """

    PREFIX = "C"
    NUM_TERMINALS = 2
    companion_only_accept = True

    def __init__(self, name: str, node_pos: str, node_neg: str, value,
                 ic: float | None = None):
        super().__init__(name, [node_pos, node_neg])
        self.capacitance = parse_value(value)
        if self.capacitance < 0.0:
            raise NetlistError(f"capacitor {name!r} has negative value")
        self.initial_voltage = None if ic is None else parse_value(ic)
        self._companion = CompanionCapacitor(self.capacitance)

    def prepare(self, circuit) -> None:
        self._companion = CompanionCapacitor(self.capacitance)

    def init_state(self, state) -> None:
        if self.initial_voltage is not None and state.use_ic:
            v0 = self.initial_voltage
        else:
            v0 = state.v(self._idx[0]) - state.v(self._idx[1])
        self._companion.init_state(v0)

    def stamp(self, system, state) -> None:
        if state.mode != "tran":
            return  # open circuit at DC
        self._companion.stamp_tran(system, state, self._idx[0], self._idx[1])

    def stamp_constant(self, system, state) -> None:
        """The companion stamp is handled by the builder's capacitor bank."""

    def companion_entries(self):
        return ((self._companion, self._idx[0], self._idx[1]),)

    def stamp_ac(self, system, state) -> None:
        self._companion.stamp_ac(system, state, self._idx[0], self._idx[1])

    def accept_timestep(self, state) -> None:
        self._companion.accept(state, self._idx[0], self._idx[1])

    def current(self, state) -> float:
        return self._companion.current(state, self._idx[0], self._idx[1])


class Inductor(Device):
    """Linear inductor ``L<name> n+ n- value [ic=i0]``.

    Modelled with an explicit branch-current unknown so that it behaves as a
    short circuit at DC.
    """

    PREFIX = "L"
    NUM_TERMINALS = 2

    def __init__(self, name: str, node_pos: str, node_neg: str, value,
                 ic: float | None = None):
        super().__init__(name, [node_pos, node_neg])
        self.inductance = parse_value(value)
        if self.inductance < 0.0:
            raise NetlistError(f"inductor {name!r} has negative value")
        self.initial_current = None if ic is None else parse_value(ic)
        self._i_prev = 0.0
        self._v_prev = 0.0

    def branch_count(self) -> int:
        return 1

    def init_state(self, state) -> None:
        if self.initial_current is not None and state.use_ic:
            self._i_prev = self.initial_current
        else:
            self._i_prev = state.x[self.branch_index]
        self._v_prev = state.v(self._idx[0]) - state.v(self._idx[1])

    def stamp(self, system, state) -> None:
        pos, neg = self._idx
        br = self.branch_index
        # KCL: branch current leaves pos, enters neg.
        system.add(pos, br, 1.0)
        system.add(neg, br, -1.0)
        # Branch equation.
        system.add(br, pos, 1.0)
        system.add(br, neg, -1.0)
        if state.mode == "tran":
            req = state.integ_c0 * self.inductance
            if state.integ_pred_x is not None:
                # BDF corrector: v = L*i' with i' = dpred + c0*(i - ipred).
                veq = self.inductance * (
                    state.pred_d(br) - state.integ_c0 * state.pred(br))
            else:
                # Branch equation:
                # v(pos) - v(neg) - req*i = -(req*i_prev + c1*v_prev)
                veq = -(req * self._i_prev + state.integ_c1 * self._v_prev)
            system.add(br, br, -req)
            system.add_rhs(br, veq)
        # DC: v(pos) - v(neg) = 0 (ideal short), nothing more to stamp.

    def stamp_ac(self, system, state) -> None:
        pos, neg = self._idx
        br = self.branch_index
        system.add(pos, br, 1.0)
        system.add(neg, br, -1.0)
        system.add(br, pos, 1.0)
        system.add(br, neg, -1.0)
        system.add(br, br, -1j * state.omega * self.inductance)

    def accept_timestep(self, state) -> None:
        self._i_prev = state.x[self.branch_index]
        self._v_prev = state.v(self._idx[0]) - state.v(self._idx[1])

    def current(self, state) -> float:
        return state.x[self.branch_index]
