"""Voltage-step limiting helpers used by the nonlinear devices.

These are the classic SPICE limiting functions: without them the exponential
diode characteristic overflows as soon as Newton-Raphson proposes a junction
voltage a few hundred millivolts too high.
"""

from __future__ import annotations

import math


def pnjlim(v_new: float, v_old: float, vt: float, v_crit: float) -> float:
    """Limit the update of a pn-junction voltage (Nagel's algorithm)."""
    if v_new > v_crit and abs(v_new - v_old) > 2.0 * vt:
        if v_old > 0.0:
            arg = 1.0 + (v_new - v_old) / vt
            if arg > 0.0:
                v_new = v_old + vt * math.log(arg)
            else:
                v_new = v_crit
        else:
            v_new = vt * math.log(v_new / vt)
    return v_new


def fetlim(v_new: float, v_old: float, vto: float) -> float:
    """Limit the gate-source voltage update of a MOSFET."""
    vt_old = v_old - vto
    vt_new = v_new - vto
    if vt_old >= 0.0:
        if vt_new >= 0.0:
            # Both in (or at edge of) inversion: limit the step size.
            if vt_new > 2.0 * vt_old + 2.0:
                vt_new = 2.0 * vt_old + 2.0
            elif vt_old > 2.0 and vt_new < 0.5 * vt_old:
                vt_new = 0.5 * vt_old
        else:
            # Leaving inversion: do not jump deeper than slightly below vto.
            vt_new = max(vt_new, -0.5)
    else:
        if vt_new >= 0.0:
            # Entering inversion: do not jump further than a little above vto.
            vt_new = min(vt_new, 2.0)
        # Both below threshold: no limiting required.
    return vt_new + vto


def limvds(v_new: float, v_old: float) -> float:
    """Limit the drain-source voltage update of a MOSFET."""
    if v_old >= 3.5:
        if v_new > v_old:
            v_new = min(v_new, 3.0 * v_old + 2.0)
        elif v_new < 3.5:
            v_new = max(v_new, 2.0)
    else:
        if v_new > v_old:
            v_new = min(v_new, 4.0)
        else:
            v_new = max(v_new, -0.5)
    return v_new
