"""Level-1 (Shichman-Hodges) MOSFET model.

The model covers cutoff / linear / saturation operation, body effect,
channel-length modulation and fixed terminal capacitances (gate overlap,
gate oxide and junction capacitances).  It is the workhorse device for the
VCO test case of the paper.
"""

from __future__ import annotations

import math

from ...errors import ModelError
from ...units import EPS0, EPS_SIO2, parse_value
from .base import CompanionCapacitor, Device, stamp_current_source
from .limits import fetlim, limvds

#: Default model parameters for the level-1 model (SPICE defaults).
DEFAULT_MOS_PARAMS = {
    "vto": 0.8,
    "kp": 2.0e-5,
    "gamma": 0.4,
    "phi": 0.65,
    "lambda": 0.02,
    "tox": 2.5e-8,
    "cgso": 2.0e-10,   # F/m of gate width
    "cgdo": 2.0e-10,
    "cgbo": 0.0,
    "cj": 3.0e-4,      # F/m^2 of junction area
    "cjsw": 2.5e-10,   # F/m of junction perimeter
    "is": 1e-14,
}


class Mosfet(Device):
    """MOSFET ``M<name> drain gate source bulk model W=... L=...``.

    Geometry parameters ``w`` and ``l`` are in metres, ``ad``/``as_`` in
    square metres and ``pd``/``ps`` in metres, following SPICE conventions.
    """

    PREFIX = "M"
    NUM_TERMINALS = 4

    def __init__(self, name, drain, gate, source, bulk, model: str,
                 w=10e-6, l=2e-6, ad=0.0, as_=0.0, pd=0.0, ps=0.0,
                 m: float = 1.0):
        super().__init__(name, [drain, gate, source, bulk])
        self.model_name = str(model)
        self.w = parse_value(w)
        self.l = parse_value(l)
        self.ad = parse_value(ad)
        self.as_ = parse_value(as_)
        self.pd = parse_value(pd)
        self.ps = parse_value(ps)
        self.multiplier = parse_value(m)
        # Resolved model parameters (filled in by prepare()).
        self.polarity = 1.0
        self.params = dict(DEFAULT_MOS_PARAMS)
        # Newton history for voltage limiting.
        self._vgs_last = 0.0
        self._vds_last = 0.0
        # Last linearisation (for AC analysis).
        self._op = {"ids": 0.0, "gm": 0.0, "gds": 0.0, "gmbs": 0.0,
                    "vgs": 0.0, "vds": 0.0, "vbs": 0.0, "reverse": False}
        self._caps: dict[str, CompanionCapacitor] = {}

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def is_nonlinear(self) -> bool:
        return True

    def prepare(self, circuit) -> None:
        model = circuit.model(self.model_name)
        if model.kind not in ("nmos", "pmos"):
            raise ModelError(
                f"device {self.name!r}: model {self.model_name!r} is of kind "
                f"{model.kind!r}, expected nmos/pmos")
        self.polarity = 1.0 if model.kind == "nmos" else -1.0
        params = dict(DEFAULT_MOS_PARAMS)
        params.update(model.params)
        self.params = params
        self._vgs_last = 0.0
        self._vds_last = 0.0
        self._build_capacitances()

    def _build_capacitances(self) -> None:
        p = self.params
        cox = EPS0 * EPS_SIO2 / float(p["tox"])
        area = self.w * self.l
        cgs = float(p["cgso"]) * self.w + 0.5 * cox * area
        cgd = float(p["cgdo"]) * self.w + 0.5 * cox * area
        cgb = float(p["cgbo"]) * self.l
        cdb = float(p["cj"]) * self.ad + float(p["cjsw"]) * self.pd
        csb = float(p["cj"]) * self.as_ + float(p["cjsw"]) * self.ps
        scale = self.multiplier
        self._caps = {
            "gs": CompanionCapacitor(cgs * scale),
            "gd": CompanionCapacitor(cgd * scale),
            "gb": CompanionCapacitor(cgb * scale),
            "db": CompanionCapacitor(cdb * scale),
            "sb": CompanionCapacitor(csb * scale),
        }

    def _cap_nodes(self, key: str) -> tuple[int, int]:
        d, g, s, b = self._idx
        mapping = {"gs": (g, s), "gd": (g, d), "gb": (g, b),
                   "db": (d, b), "sb": (s, b)}
        return mapping[key]

    # ------------------------------------------------------------------
    # Large-signal evaluation (in the polarity-normalised frame)
    # ------------------------------------------------------------------
    def _threshold(self, vbs: float) -> tuple[float, float]:
        """Return (von, dvon_dvbs) including body effect."""
        p = self.params
        vto = float(p["vto"]) * (1.0 if self.polarity > 0 else -1.0)
        # Normalise so that vto is positive in the evaluation frame.
        vto = abs(float(p["vto"]))
        gamma = float(p["gamma"])
        phi = max(float(p["phi"]), 0.1)
        if gamma == 0.0:
            return vto, 0.0
        if vbs <= 0.0:
            sqrt_term = math.sqrt(phi - vbs)
            von = vto + gamma * (sqrt_term - math.sqrt(phi))
            dvon = -gamma / (2.0 * sqrt_term)
        else:
            sqrt_phi = math.sqrt(phi)
            denom = 1.0 + vbs / (2.0 * phi)
            sqrt_term = sqrt_phi / denom
            von = vto + gamma * (sqrt_term - sqrt_phi)
            dvon = -gamma * sqrt_phi / (2.0 * phi * denom * denom)
        return von, dvon

    def _drain_current(self, vgs: float, vds: float, vbs: float
                       ) -> tuple[float, float, float, float]:
        """Return (ids, gm, gds, gmbs) for vds >= 0 in the normalised frame."""
        p = self.params
        beta = float(p["kp"]) * self.multiplier * self.w / self.l
        lam = float(p["lambda"])
        von, dvon = self._threshold(vbs)
        vgst = vgs - von
        if vgst <= 0.0:
            return 0.0, 0.0, 0.0, 0.0
        clm = 1.0 + lam * vds
        if vgst <= vds:
            # Saturation.
            ids = 0.5 * beta * vgst * vgst * clm
            gm = beta * vgst * clm
            gds = 0.5 * beta * vgst * vgst * lam
        else:
            # Linear (triode).
            ids = beta * (vgst - 0.5 * vds) * vds * clm
            gm = beta * vds * clm
            gds = beta * (vgst - vds) * clm + beta * (vgst - 0.5 * vds) * vds * lam
        gmbs = -gm * dvon
        return ids, gm, gds, gmbs

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------
    def stamp(self, system, state) -> None:
        d, g, s, b = self._idx
        pol = self.polarity
        vd = state.v(d)
        vg = state.v(g)
        vs = state.v(s)
        vb = state.v(b)
        vds = pol * (vd - vs)
        reverse = vds < 0.0
        if reverse:
            # Exchange drain and source roles for the evaluation.
            e_d, e_s = s, d
            vds_f = -vds
            vgs_f = pol * (vg - state.v(e_s))
            vbs_f = pol * (vb - state.v(e_s))
        else:
            e_d, e_s = d, s
            vds_f = vds
            vgs_f = pol * (vg - vs)
            vbs_f = pol * (vb - vs)

        # Newton step limiting on the evaluation-frame voltages.
        vgs_requested, vds_requested = vgs_f, vds_f
        vgs_f = fetlim(vgs_f, self._vgs_last, self._threshold(vbs_f)[0])
        vds_f = limvds(vds_f, self._vds_last)
        if (abs(vgs_f - vgs_requested) > 1e-6 + 1e-3 * abs(vgs_requested)
                or abs(vds_f - vds_requested) > 1e-6 + 1e-3 * abs(vds_requested)):
            state.limited = True
        self._vgs_last = vgs_f
        self._vds_last = vds_f

        ids, gm, gds, gmbs = self._drain_current(vgs_f, vds_f, vbs_f)
        self._op = {"ids": ids, "gm": gm, "gds": gds, "gmbs": gmbs,
                    "vgs": vgs_f, "vds": vds_f, "vbs": vbs_f,
                    "reverse": reverse}

        # Equivalent current of the linearised characteristic
        # (in the evaluation frame, flowing from e_d to e_s).
        ieq = ids - gm * vgs_f - gds * vds_f - gmbs * vbs_f

        gds_tot = gds + state.gmin
        # Conductance stamps: identical pattern for NMOS/PMOS and for
        # normal/reverse operation (the frame change already swapped e_d/e_s).
        system.add(e_d, g, gm)
        system.add(e_d, e_d, gds_tot)
        system.add(e_d, e_s, -(gm + gds_tot + gmbs))
        system.add(e_d, b, gmbs)
        system.add(e_s, g, -gm)
        system.add(e_s, e_d, -gds_tot)
        system.add(e_s, e_s, gm + gds_tot + gmbs)
        system.add(e_s, b, -gmbs)
        stamp_current_source(system, e_d, e_s, pol * ieq)

        if state.mode == "tran":
            for key, cap in self._caps.items():
                pos, neg = self._cap_nodes(key)
                cap.stamp_tran(system, state, pos, neg)

    def stamp_ac(self, system, state) -> None:
        d, g, s, b = self._idx
        op = self._op
        e_d, e_s = (s, d) if op["reverse"] else (d, s)
        gm, gds, gmbs = op["gm"], op["gds"] + state.gmin, op["gmbs"]
        system.add(e_d, g, gm)
        system.add(e_d, e_d, gds)
        system.add(e_d, e_s, -(gm + gds + gmbs))
        system.add(e_d, b, gmbs)
        system.add(e_s, g, -gm)
        system.add(e_s, e_d, -gds)
        system.add(e_s, e_s, gm + gds + gmbs)
        system.add(e_s, b, -gmbs)
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.stamp_ac(system, state, pos, neg)

    # ------------------------------------------------------------------
    # Transient history
    # ------------------------------------------------------------------
    def init_state(self, state) -> None:
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.init_state(state.v(pos) - state.v(neg))
        self._vgs_last = 0.0
        self._vds_last = 0.0

    def accept_timestep(self, state) -> None:
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.accept(state, pos, neg)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def operating_point(self) -> dict:
        """Last linearisation values (ids, gm, gds, gmbs ...)."""
        return dict(self._op)

    def drain_current(self, state) -> float:
        """Drain current at the present solution (positive into the drain for
        an NMOS in normal operation)."""
        d, g, s, b = self._idx
        pol = self.polarity
        vds = pol * (state.v(d) - state.v(s))
        if vds >= 0.0:
            vgs = pol * (state.v(g) - state.v(s))
            vbs = pol * (state.v(b) - state.v(s))
            ids, _, _, _ = self._drain_current(vgs, vds, vbs)
            return pol * ids
        vgd = pol * (state.v(g) - state.v(d))
        vbd = pol * (state.v(b) - state.v(d))
        ids, _, _, _ = self._drain_current(vgd, -vds, vbd)
        return -pol * ids
