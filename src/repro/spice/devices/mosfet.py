"""Level-1 (Shichman-Hodges) MOSFET model.

The model covers cutoff / linear / saturation operation, body effect,
channel-length modulation and fixed terminal capacitances (gate overlap,
gate oxide and junction capacitances).  It is the workhorse device for the
VCO test case of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import ModelError
from ...units import EPS0, EPS_SIO2, parse_value
from .base import CompanionCapacitor, Device, stamp_current_source
from .limits import fetlim, limvds

#: Default model parameters for the level-1 model (SPICE defaults).
DEFAULT_MOS_PARAMS = {
    "vto": 0.8,
    "kp": 2.0e-5,
    "gamma": 0.4,
    "phi": 0.65,
    "lambda": 0.02,
    "tox": 2.5e-8,
    "cgso": 2.0e-10,   # F/m of gate width
    "cgdo": 2.0e-10,
    "cgbo": 0.0,
    "cj": 3.0e-4,      # F/m^2 of junction area
    "cjsw": 2.5e-10,   # F/m of junction perimeter
    "is": 1e-14,
}


class Mosfet(Device):
    """MOSFET ``M<name> drain gate source bulk model W=... L=...``.

    Geometry parameters ``w`` and ``l`` are in metres, ``ad``/``as_`` in
    square metres and ``pd``/``ps`` in metres, following SPICE conventions.
    """

    PREFIX = "M"
    NUM_TERMINALS = 4
    companion_only_accept = True

    def __init__(self, name, drain, gate, source, bulk, model: str,
                 w=10e-6, l=2e-6, ad=0.0, as_=0.0, pd=0.0, ps=0.0,
                 m: float = 1.0):
        super().__init__(name, [drain, gate, source, bulk])
        self.model_name = str(model)
        self.w = parse_value(w)
        self.l = parse_value(l)
        self.ad = parse_value(ad)
        self.as_ = parse_value(as_)
        self.pd = parse_value(pd)
        self.ps = parse_value(ps)
        self.multiplier = parse_value(m)
        # Resolved model parameters (filled in by prepare()).
        self.polarity = 1.0
        self.params = dict(DEFAULT_MOS_PARAMS)
        # Newton history for voltage limiting.
        self._vgs_last = 0.0
        self._vds_last = 0.0
        # Last linearisation (for AC analysis).
        self._op = {"ids": 0.0, "gm": 0.0, "gds": 0.0, "gmbs": 0.0,
                    "vgs": 0.0, "vds": 0.0, "vbs": 0.0, "reverse": False}
        self._caps: dict[str, CompanionCapacitor] = {}

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def is_nonlinear(self) -> bool:
        return True

    def prepare(self, circuit) -> None:
        model = circuit.model(self.model_name)
        if model.kind not in ("nmos", "pmos"):
            raise ModelError(
                f"device {self.name!r}: model {self.model_name!r} is of kind "
                f"{model.kind!r}, expected nmos/pmos")
        self.polarity = 1.0 if model.kind == "nmos" else -1.0
        params = dict(DEFAULT_MOS_PARAMS)
        params.update(model.params)
        self.params = params
        self._vgs_last = 0.0
        self._vds_last = 0.0
        self._build_capacitances()

    def _build_capacitances(self) -> None:
        p = self.params
        cox = EPS0 * EPS_SIO2 / float(p["tox"])
        area = self.w * self.l
        cgs = float(p["cgso"]) * self.w + 0.5 * cox * area
        cgd = float(p["cgdo"]) * self.w + 0.5 * cox * area
        cgb = float(p["cgbo"]) * self.l
        cdb = float(p["cj"]) * self.ad + float(p["cjsw"]) * self.pd
        csb = float(p["cj"]) * self.as_ + float(p["cjsw"]) * self.ps
        scale = self.multiplier
        self._caps = {
            "gs": CompanionCapacitor(cgs * scale),
            "gd": CompanionCapacitor(cgd * scale),
            "gb": CompanionCapacitor(cgb * scale),
            "db": CompanionCapacitor(cdb * scale),
            "sb": CompanionCapacitor(csb * scale),
        }

    def _cap_nodes(self, key: str) -> tuple[int, int]:
        d, g, s, b = self._idx
        mapping = {"gs": (g, s), "gd": (g, d), "gb": (g, b),
                   "db": (d, b), "sb": (s, b)}
        return mapping[key]

    # ------------------------------------------------------------------
    # Large-signal evaluation (in the polarity-normalised frame)
    # ------------------------------------------------------------------
    def _threshold(self, vbs: float) -> tuple[float, float]:
        """Return (von, dvon_dvbs) including body effect."""
        p = self.params
        vto = float(p["vto"]) * (1.0 if self.polarity > 0 else -1.0)
        # Normalise so that vto is positive in the evaluation frame.
        vto = abs(float(p["vto"]))
        gamma = float(p["gamma"])
        phi = max(float(p["phi"]), 0.1)
        if gamma == 0.0:
            return vto, 0.0
        if vbs <= 0.0:
            sqrt_term = math.sqrt(phi - vbs)
            von = vto + gamma * (sqrt_term - math.sqrt(phi))
            dvon = -gamma / (2.0 * sqrt_term)
        else:
            sqrt_phi = math.sqrt(phi)
            denom = 1.0 + vbs / (2.0 * phi)
            sqrt_term = sqrt_phi / denom
            von = vto + gamma * (sqrt_term - sqrt_phi)
            dvon = -gamma * sqrt_phi / (2.0 * phi * denom * denom)
        return von, dvon

    def _drain_current(self, vgs: float, vds: float, vbs: float,
                       threshold: tuple[float, float] | None = None
                       ) -> tuple[float, float, float, float]:
        """Return (ids, gm, gds, gmbs) for vds >= 0 in the normalised frame.

        ``threshold`` short-circuits the body-effect evaluation when the
        caller already computed ``(von, dvon)`` for this ``vbs``.
        """
        p = self.params
        beta = float(p["kp"]) * self.multiplier * self.w / self.l
        lam = float(p["lambda"])
        von, dvon = threshold if threshold is not None else self._threshold(vbs)
        vgst = vgs - von
        if vgst <= 0.0:
            return 0.0, 0.0, 0.0, 0.0
        clm = 1.0 + lam * vds
        if vgst <= vds:
            # Saturation.
            ids = 0.5 * beta * vgst * vgst * clm
            gm = beta * vgst * clm
            gds = 0.5 * beta * vgst * vgst * lam
        else:
            # Linear (triode).
            ids = beta * (vgst - 0.5 * vds) * vds * clm
            gm = beta * vds * clm
            gds = beta * (vgst - vds) * clm + beta * (vgst - 0.5 * vds) * vds * lam
        gmbs = -gm * dvon
        return ids, gm, gds, gmbs

    # ------------------------------------------------------------------
    # Stamping
    # ------------------------------------------------------------------
    def stamp(self, system, state) -> None:
        self.stamp_iteration(system, state)
        if state.mode == "tran":
            for key, cap in self._caps.items():
                pos, neg = self._cap_nodes(key)
                cap.stamp_tran(system, state, pos, neg)

    def companion_entries(self):
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            yield cap, pos, neg

    def stamp_iteration(self, system, state) -> None:
        """Channel linearisation only; capacitances are bank-stamped."""
        d, g, s, b = self._idx
        pol = self.polarity
        # Inlined terminal-voltage reads (this is the hottest loop of the
        # whole simulator; a state.v() call per terminal is measurable).
        x = state.x
        vd = float(x[d]) if d >= 0 else 0.0
        vg = float(x[g]) if g >= 0 else 0.0
        vs = float(x[s]) if s >= 0 else 0.0
        vb = float(x[b]) if b >= 0 else 0.0
        vds = pol * (vd - vs)
        reverse = vds < 0.0
        if reverse:
            # Exchange drain and source roles for the evaluation.
            e_d, e_s = s, d
            vds_f = -vds
            vgs_f = pol * (vg - vd)
            vbs_f = pol * (vb - vd)
        else:
            e_d, e_s = d, s
            vds_f = vds
            vgs_f = pol * (vg - vs)
            vbs_f = pol * (vb - vs)

        # Newton step limiting on the evaluation-frame voltages.
        threshold = self._threshold(vbs_f)
        vgs_requested, vds_requested = vgs_f, vds_f
        vgs_f = fetlim(vgs_f, self._vgs_last, threshold[0])
        vds_f = limvds(vds_f, self._vds_last)
        if (abs(vgs_f - vgs_requested) > 1e-6 + 1e-3 * abs(vgs_requested)
                or abs(vds_f - vds_requested) > 1e-6 + 1e-3 * abs(vds_requested)):
            state.limited = True
        self._vgs_last = vgs_f
        self._vds_last = vds_f

        ids, gm, gds, gmbs = self._drain_current(vgs_f, vds_f, vbs_f,
                                                 threshold=threshold)
        self._op = {"ids": ids, "gm": gm, "gds": gds, "gmbs": gmbs,
                    "vgs": vgs_f, "vds": vds_f, "vbs": vbs_f,
                    "reverse": reverse}

        # Equivalent current of the linearised characteristic
        # (in the evaluation frame, flowing from e_d to e_s).
        ieq = ids - gm * vgs_f - gds * vds_f - gmbs * vbs_f

        gds_tot = gds + state.gmin
        # Conductance stamps: identical pattern for NMOS/PMOS and for
        # normal/reverse operation (the frame change already swapped e_d/e_s).
        system.add(e_d, g, gm)
        system.add(e_d, e_d, gds_tot)
        system.add(e_d, e_s, -(gm + gds_tot + gmbs))
        system.add(e_d, b, gmbs)
        system.add(e_s, g, -gm)
        system.add(e_s, e_d, -gds_tot)
        system.add(e_s, e_s, gm + gds_tot + gmbs)
        system.add(e_s, b, -gmbs)
        stamp_current_source(system, e_d, e_s, pol * ieq)

    def stamp_ac(self, system, state) -> None:
        d, g, s, b = self._idx
        op = self._op
        e_d, e_s = (s, d) if op["reverse"] else (d, s)
        gm, gds, gmbs = op["gm"], op["gds"] + state.gmin, op["gmbs"]
        system.add(e_d, g, gm)
        system.add(e_d, e_d, gds)
        system.add(e_d, e_s, -(gm + gds + gmbs))
        system.add(e_d, b, gmbs)
        system.add(e_s, g, -gm)
        system.add(e_s, e_d, -gds)
        system.add(e_s, e_s, gm + gds + gmbs)
        system.add(e_s, b, -gmbs)
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.stamp_ac(system, state, pos, neg)

    # ------------------------------------------------------------------
    # Transient history
    # ------------------------------------------------------------------
    def init_state(self, state) -> None:
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.init_state(state.v(pos) - state.v(neg))
        self._vgs_last = 0.0
        self._vds_last = 0.0

    def accept_timestep(self, state) -> None:
        for key, cap in self._caps.items():
            pos, neg = self._cap_nodes(key)
            cap.accept(state, pos, neg)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def operating_point(self) -> dict:
        """Last linearisation values (ids, gm, gds, gmbs ...)."""
        return dict(self._op)

    def drain_current(self, state) -> float:
        """Drain current at the present solution (positive into the drain for
        an NMOS in normal operation)."""
        d, g, s, b = self._idx
        pol = self.polarity
        vds = pol * (state.v(d) - state.v(s))
        if vds >= 0.0:
            vgs = pol * (state.v(g) - state.v(s))
            vbs = pol * (state.v(b) - state.v(s))
            ids, _, _, _ = self._drain_current(vgs, vds, vbs)
            return pol * ids
        vgd = pol * (state.v(g) - state.v(d))
        vbd = pol * (state.v(b) - state.v(d))
        ids, _, _, _ = self._drain_current(vgd, -vds, vbd)
        return -pol * ids


def _fetlim_vec(v_new: np.ndarray, v_old: np.ndarray,
                vto: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.spice.devices.limits.fetlim` (identical
    piecewise arithmetic, evaluated elementwise)."""
    vt_old = v_old - vto
    vt_new = v_new - vto
    upper = 2.0 * vt_old + 2.0
    both = np.where(vt_new > upper, upper,
                    np.where((vt_old > 2.0) & (vt_new < 0.5 * vt_old),
                             0.5 * vt_old, vt_new))
    leaving = np.maximum(vt_new, -0.5)
    entering = np.minimum(vt_new, 2.0)
    result = np.where(vt_old >= 0.0,
                      np.where(vt_new >= 0.0, both, leaving),
                      np.where(vt_new >= 0.0, entering, vt_new))
    return result + vto


def _limvds_vec(v_new: np.ndarray, v_old: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.spice.devices.limits.limvds`."""
    rising = v_new > v_old
    high = np.where(rising, np.minimum(v_new, 3.0 * v_old + 2.0),
                    np.where(v_new < 3.5, np.maximum(v_new, 2.0), v_new))
    low = np.where(rising, np.minimum(v_new, 4.0), np.maximum(v_new, -0.5))
    return np.where(v_old >= 3.5, high, low)


class MosfetBank:
    """Vectorized Newton-iteration stamp of all level-1 MOSFETs at once.

    The bank precomputes the stamp index map of every channel stamp (the
    eight matrix slots ``{d,s} x {g,d,s,b}`` and the two RHS entries per
    device, ground terminals dropped) so that each Newton iteration gathers
    the terminal voltages, evaluates the Shichman-Hodges equations and the
    SPICE limiting functions in array form, and fills the shared system with
    two vectorized ``system.scatter`` calls.  The arithmetic mirrors
    :meth:`Mosfet.stamp_iteration` operation for operation, so the two paths
    produce bitwise-identical stamps.

    Device objects stay the owners of the limiting history and the last
    linearisation (``_op``) *between* solves: :meth:`load_history` gathers
    them when a solve starts and :meth:`store_history` writes them back when
    it ends, which keeps the scalar path (legacy ``build``, the AC refresh,
    operating-point reporting) fully consistent.
    """

    def __init__(self, mosfets):
        self.mosfets = list(mosfets)
        count = len(self.mosfets)
        idx = np.array([m._idx for m in self.mosfets], dtype=int)
        self._gather_clip = np.maximum(idx, 0)
        self._gather_ground = idx < 0
        d, g, s, b = idx.T
        self.pol = np.array([m.polarity for m in self.mosfets])

        def param(key):
            return np.array([float(m.params[key]) for m in self.mosfets])

        self.beta = np.array([float(m.params["kp"]) * m.multiplier * m.w / m.l
                              for m in self.mosfets])
        self.lam = param("lambda")
        self.vto = np.abs(param("vto"))
        self.gamma = param("gamma")
        self.phi = np.maximum(param("phi"), 0.1)
        self.sqrt_phi = np.sqrt(self.phi)
        self.vgs_last = np.zeros(count)
        self.vds_last = np.zeros(count)
        self._last_op: tuple | None = None

        # Matrix scatter map: slot k of device i contributes value V[k, i]
        # at (rows[k][i], cols[k][i]); ground entries are dropped up front.
        slot_rows = (d, d, d, d, s, s, s, s)
        slot_cols = (g, d, s, b, g, d, s, b)
        m_rows, m_cols, m_slot, m_dev = [], [], [], []
        for slot, (rows, cols) in enumerate(zip(slot_rows, slot_cols)):
            for dev in range(count):
                if rows[dev] >= 0 and cols[dev] >= 0:
                    m_rows.append(rows[dev])
                    m_cols.append(cols[dev])
                    m_slot.append(slot)
                    m_dev.append(dev)
        self._m_index = (np.asarray(m_rows, dtype=int),
                         np.asarray(m_cols, dtype=int))
        self._m_flat = (np.asarray(m_slot, dtype=int) * count
                        + np.asarray(m_dev, dtype=int))
        r_rows, r_slot, r_dev = [], [], []
        for slot, rows in enumerate((d, s)):
            for dev in range(count):
                if rows[dev] >= 0:
                    r_rows.append(rows[dev])
                    r_slot.append(slot)
                    r_dev.append(dev)
        self._r_rows = np.asarray(r_rows, dtype=int)
        self._r_flat = (np.asarray(r_slot, dtype=int) * count
                        + np.asarray(r_dev, dtype=int))

    def __len__(self) -> int:
        return len(self.mosfets)

    # ------------------------------------------------------------------
    def load_history(self) -> None:
        """Gather the limiting history from the device objects."""
        count = len(self.mosfets)
        self.vgs_last = np.fromiter((m._vgs_last for m in self.mosfets),
                                    float, count)
        self.vds_last = np.fromiter((m._vds_last for m in self.mosfets),
                                    float, count)

    def store_history(self) -> None:
        """Write the limiting history and the last linearisation back to the
        device objects (AC analysis and reporting read them there)."""
        for index, mosfet in enumerate(self.mosfets):
            mosfet._vgs_last = float(self.vgs_last[index])
            mosfet._vds_last = float(self.vds_last[index])
        if self._last_op is None:
            return
        ids, gm, gds, gmbs, vgs, vds, vbs, reverse = self._last_op
        for index, mosfet in enumerate(self.mosfets):
            mosfet._op = {"ids": float(ids[index]), "gm": float(gm[index]),
                          "gds": float(gds[index]), "gmbs": float(gmbs[index]),
                          "vgs": float(vgs[index]), "vds": float(vds[index]),
                          "vbs": float(vbs[index]),
                          "reverse": bool(reverse[index])}

    # ------------------------------------------------------------------
    def _threshold(self, vbs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`Mosfet._threshold` (von and dvon/dvbs)."""
        negative = vbs <= 0.0
        # Clamps keep the unused lane of each where() free of sqrt/division
        # warnings; the selected lane is untouched.
        sqrt_term_n = np.sqrt(np.maximum(self.phi - vbs, 1e-300))
        von_n = self.vto + self.gamma * (sqrt_term_n - self.sqrt_phi)
        dvon_n = -self.gamma / (2.0 * sqrt_term_n)
        denom = np.where(negative, 1.0, 1.0 + vbs / (2.0 * self.phi))
        sqrt_term_p = self.sqrt_phi / denom
        von_p = self.vto + self.gamma * (sqrt_term_p - self.sqrt_phi)
        dvon_p = -self.gamma * self.sqrt_phi / (2.0 * self.phi * denom * denom)
        von = np.where(negative, von_n, von_p)
        dvon = np.where(negative, dvon_n, dvon_p)
        no_body = self.gamma == 0.0
        return np.where(no_body, self.vto, von), np.where(no_body, 0.0, dvon)

    def _drain_current(self, vgs, vds, von, dvon):
        """Vectorized :meth:`Mosfet._drain_current` for the limited
        evaluation-frame voltages."""
        vgst = vgs - von
        clm = 1.0 + self.lam * vds
        saturated = vgst <= vds
        ids_sat = 0.5 * self.beta * vgst * vgst * clm
        gm_sat = self.beta * vgst * clm
        gds_sat = 0.5 * self.beta * vgst * vgst * self.lam
        ids_tri = self.beta * (vgst - 0.5 * vds) * vds * clm
        gm_tri = self.beta * vds * clm
        gds_tri = (self.beta * (vgst - vds) * clm
                   + self.beta * (vgst - 0.5 * vds) * vds * self.lam)
        cutoff = vgst <= 0.0
        ids = np.where(cutoff, 0.0, np.where(saturated, ids_sat, ids_tri))
        gm = np.where(cutoff, 0.0, np.where(saturated, gm_sat, gm_tri))
        gds = np.where(cutoff, 0.0, np.where(saturated, gds_sat, gds_tri))
        gmbs = -gm * dvon
        return ids, gm, gds, gmbs

    def stamp_iteration(self, system, state) -> None:
        """Stamp every channel linearisation around ``state.x`` at once."""
        voltages = np.where(self._gather_ground, 0.0,
                            state.x[self._gather_clip])
        vd, vg, vs, vb = voltages.T
        pol = self.pol
        vds = pol * (vd - vs)
        reverse = vds < 0.0
        # Exchange drain and source roles where the channel is reversed.
        v_ref = np.where(reverse, vd, vs)
        vds_f = np.where(reverse, -vds, vds)
        vgs_f = pol * (vg - v_ref)
        vbs_f = pol * (vb - v_ref)

        # Newton step limiting on the evaluation-frame voltages.
        von, dvon = self._threshold(vbs_f)
        vgs_req, vds_req = vgs_f, vds_f
        vgs_f = _fetlim_vec(vgs_f, self.vgs_last, von)
        vds_f = _limvds_vec(vds_f, self.vds_last)
        limited = ((np.abs(vgs_f - vgs_req) > 1e-6 + 1e-3 * np.abs(vgs_req))
                   | (np.abs(vds_f - vds_req) > 1e-6 + 1e-3 * np.abs(vds_req)))
        if limited.any():
            state.limited = True
        self.vgs_last = vgs_f
        self.vds_last = vds_f

        ids, gm, gds, gmbs = self._drain_current(vgs_f, vds_f, von, dvon)
        self._last_op = (ids, gm, gds, gmbs, vgs_f, vds_f, vbs_f, reverse)

        # Equivalent current of the linearised characteristic (evaluation
        # frame, flowing from the effective drain to the effective source).
        ieq = ids - gm * vgs_f - gds * vds_f - gmbs * vbs_f
        gds_tot = gds + state.gmin
        total = gm + gds_tot + gmbs
        # Slot values match Mosfet.stamp_iteration: slots are
        # (d,g),(d,d),(d,s),(d,b),(s,g),(s,d),(s,s),(s,b).
        v_dg = np.where(reverse, -gm, gm)
        v_dd = np.where(reverse, total, gds_tot)
        v_ds = -np.where(reverse, gds_tot, total)
        v_db = np.where(reverse, -gmbs, gmbs)
        values = np.concatenate((v_dg, v_dd, v_ds, v_db,
                                 -v_dg, -v_dd, -v_ds, -v_db))
        system.scatter(self._m_index[0], self._m_index[1],
                       values[self._m_flat])
        # RHS: current pol*ieq extracted at the effective drain, injected at
        # the effective source.
        i_rhs = pol * ieq
        r_d = np.where(reverse, i_rhs, -i_rhs)
        values_rhs = np.concatenate((r_d, -r_d))
        system.scatter_rhs(self._r_rows, values_rhs[self._r_flat])


Mosfet.ITERATION_BANK = MosfetBank
