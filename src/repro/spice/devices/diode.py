"""Junction diode model (SPICE ``D`` element)."""

from __future__ import annotations

import math

from ...units import parse_value, thermal_voltage
from .base import CompanionCapacitor, Device, stamp_conductance, stamp_current_source
from .limits import pnjlim

#: Default saturation current [A].
DEFAULT_IS = 1e-14
#: Default emission coefficient.
DEFAULT_N = 1.0
#: Default series resistance [Ohm].
DEFAULT_RS = 0.0
#: Default junction capacitance [F].
DEFAULT_CJ0 = 0.0
#: Maximum exponent argument before the characteristic is linearised.
MAX_EXP_ARG = 80.0


class Diode(Device):
    """Junction diode ``D<name> anode cathode model [area]``."""

    PREFIX = "D"
    NUM_TERMINALS = 2
    companion_only_accept = True

    def __init__(self, name, anode, cathode, model: str = "", area: float = 1.0):
        super().__init__(name, [anode, cathode])
        self.model_name = str(model)
        self.area = parse_value(area)
        self.isat = DEFAULT_IS
        self.emission = DEFAULT_N
        self.cj0 = DEFAULT_CJ0
        self._v_last = 0.0
        self._gd = 0.0
        self._companion = CompanionCapacitor(0.0)

    def is_nonlinear(self) -> bool:
        return True

    def prepare(self, circuit) -> None:
        if self.model_name:
            model = circuit.model(self.model_name)
            self.isat = float(model.get("is", DEFAULT_IS))
            self.emission = float(model.get("n", DEFAULT_N))
            self.cj0 = float(model.get("cjo", model.get("cj0", DEFAULT_CJ0)))
        self.isat *= self.area
        self.cj0 *= self.area
        self._v_last = 0.0
        self._companion = CompanionCapacitor(self.cj0)

    # ------------------------------------------------------------------
    def _evaluate(self, vd: float, temperature: float) -> tuple[float, float]:
        """Return (current, conductance) of the junction at voltage ``vd``."""
        vt = self.emission * thermal_voltage(temperature)
        arg = vd / vt
        if arg > MAX_EXP_ARG:
            # Linearise beyond the overflow limit.
            exp_max = math.exp(MAX_EXP_ARG)
            current = self.isat * (exp_max * (1.0 + arg - MAX_EXP_ARG) - 1.0)
            conductance = self.isat * exp_max / vt
        elif arg < -MAX_EXP_ARG:
            current = -self.isat
            conductance = 0.0
        else:
            exp_term = math.exp(arg)
            current = self.isat * (exp_term - 1.0)
            conductance = self.isat * exp_term / vt
        return current, conductance

    def _limit(self, vd: float, temperature: float) -> float:
        vt = self.emission * thermal_voltage(temperature)
        v_crit = vt * math.log(vt / (math.sqrt(2.0) * self.isat))
        limited = pnjlim(vd, self._v_last, vt, v_crit)
        return limited

    def stamp(self, system, state) -> None:
        self.stamp_iteration(system, state)
        if state.mode == "tran":
            self._companion.stamp_tran(system, state, self._idx[0], self._idx[1])

    def stamp_iteration(self, system, state) -> None:
        """Linearised junction only; the capacitance is bank-stamped."""
        anode, cathode = self._idx
        vd_requested = state.v(anode) - state.v(cathode)
        vd = self._limit(vd_requested, state.temperature)
        if abs(vd - vd_requested) > 1e-6 + 1e-3 * abs(vd_requested):
            state.limited = True
        current, conductance = self._evaluate(vd, state.temperature)
        self._v_last = vd
        self._gd = conductance
        # Norton companion of the linearised junction.
        ieq = current - conductance * vd
        stamp_conductance(system, anode, cathode, conductance)
        stamp_current_source(system, anode, cathode, ieq)

    def companion_entries(self):
        return ((self._companion, self._idx[0], self._idx[1]),)

    def stamp_ac(self, system, state) -> None:
        anode, cathode = self._idx
        stamp_conductance(system, anode, cathode, self._gd)
        self._companion.stamp_ac(system, state, anode, cathode)

    def init_state(self, state) -> None:
        v0 = state.v(self._idx[0]) - state.v(self._idx[1])
        self._companion.init_state(v0)
        self._v_last = v0

    def accept_timestep(self, state) -> None:
        self._companion.accept(state, self._idx[0], self._idx[1])

    def current(self, state) -> float:
        vd = state.v(self._idx[0]) - state.v(self._idx[1])
        current, _ = self._evaluate(vd, state.temperature)
        return current
