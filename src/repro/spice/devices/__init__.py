"""Device library of the SPICE substrate."""

from .base import CompanionCapacitor, Device
from .controlled import (
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    VoltageControlledCurrentSource,
    VoltageControlledVoltageSource,
)
from .diode import Diode
from .mosfet import Mosfet
from .passives import Capacitor, Inductor, Resistor
from .sources import (
    CurrentSource,
    DCShape,
    ExpShape,
    PulseShape,
    PWLShape,
    SinShape,
    SourceShape,
    VoltageSource,
)
from .switch import VoltageControlledSwitch

__all__ = [
    "Device",
    "CompanionCapacitor",
    "Resistor",
    "Capacitor",
    "Inductor",
    "Diode",
    "Mosfet",
    "VoltageSource",
    "CurrentSource",
    "SourceShape",
    "DCShape",
    "PulseShape",
    "SinShape",
    "PWLShape",
    "ExpShape",
    "VoltageControlledVoltageSource",
    "VoltageControlledCurrentSource",
    "CurrentControlledCurrentSource",
    "CurrentControlledVoltageSource",
    "VoltageControlledSwitch",
]
