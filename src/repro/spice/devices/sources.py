"""Independent voltage and current sources with SPICE waveform shapes.

Supported transient shapes: ``DC``, ``PULSE``, ``SIN``, ``PWL`` and ``EXP``.
Each shape is a small class with a ``value(time)`` method so that sources can
be shared between the schematic entry, the parser and the fault injector.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from ...errors import NetlistError
from ...units import parse_value
from .base import Device, stamp_current_source


class SourceShape:
    """Base class of time-dependent source shapes."""

    def value(self, time: float) -> float:
        raise NotImplementedError

    def dc_value(self) -> float:
        """Value used for DC / operating-point analyses."""
        return self.value(0.0)

    def spice_text(self) -> str:
        raise NotImplementedError


class DCShape(SourceShape):
    """Constant value."""

    def __init__(self, level):
        self.level = parse_value(level)

    def value(self, time: float) -> float:
        return self.level

    def spice_text(self) -> str:
        return f"DC {self.level:g}"


class PulseShape(SourceShape):
    """SPICE ``PULSE(v1 v2 td tr tf pw per)``."""

    def __init__(self, v1, v2, delay=0.0, rise=1e-9, fall=1e-9,
                 width=1e-6, period=2e-6):
        self.v1 = parse_value(v1)
        self.v2 = parse_value(v2)
        self.delay = parse_value(delay)
        self.rise = max(parse_value(rise), 1e-15)
        self.fall = max(parse_value(fall), 1e-15)
        self.width = parse_value(width)
        self.period = parse_value(period)
        if self.period <= 0.0:
            raise NetlistError("PULSE period must be positive")

    def value(self, time: float) -> float:
        if time < self.delay:
            return self.v1
        t = (time - self.delay) % self.period
        if t < self.rise:
            return self.v1 + (self.v2 - self.v1) * t / self.rise
        t -= self.rise
        if t < self.width:
            return self.v2
        t -= self.width
        if t < self.fall:
            return self.v2 + (self.v1 - self.v2) * t / self.fall
        return self.v1

    def dc_value(self) -> float:
        return self.v1

    def spice_text(self) -> str:
        return (f"PULSE({self.v1:g} {self.v2:g} {self.delay:g} {self.rise:g} "
                f"{self.fall:g} {self.width:g} {self.period:g})")


class SinShape(SourceShape):
    """SPICE ``SIN(vo va freq td theta)``."""

    def __init__(self, offset, amplitude, frequency, delay=0.0, damping=0.0):
        self.offset = parse_value(offset)
        self.amplitude = parse_value(amplitude)
        self.frequency = parse_value(frequency)
        self.delay = parse_value(delay)
        self.damping = parse_value(damping)

    def value(self, time: float) -> float:
        if time < self.delay:
            return self.offset
        t = time - self.delay
        envelope = math.exp(-self.damping * t) if self.damping else 1.0
        return self.offset + self.amplitude * envelope * math.sin(
            2.0 * math.pi * self.frequency * t)

    def dc_value(self) -> float:
        return self.offset

    def spice_text(self) -> str:
        return (f"SIN({self.offset:g} {self.amplitude:g} {self.frequency:g} "
                f"{self.delay:g} {self.damping:g})")


class PWLShape(SourceShape):
    """SPICE ``PWL(t1 v1 t2 v2 ...)`` piecewise-linear shape."""

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = [(parse_value(t), parse_value(v)) for t, v in points]
        if not pts:
            raise NetlistError("PWL source needs at least one point")
        times = [t for t, _ in pts]
        if any(b < a for a, b in zip(times, times[1:])):
            raise NetlistError("PWL time points must be non-decreasing")
        self.points = pts

    def value(self, time: float) -> float:
        times = [t for t, _ in self.points]
        if time <= times[0]:
            return self.points[0][1]
        if time >= times[-1]:
            return self.points[-1][1]
        hi = bisect.bisect_right(times, time)
        t0, v0 = self.points[hi - 1]
        t1, v1 = self.points[hi]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)

    def dc_value(self) -> float:
        return self.points[0][1]

    def spice_text(self) -> str:
        inner = " ".join(f"{t:g} {v:g}" for t, v in self.points)
        return f"PWL({inner})"


class ExpShape(SourceShape):
    """SPICE ``EXP(v1 v2 td1 tau1 td2 tau2)``."""

    def __init__(self, v1, v2, delay1=0.0, tau1=1e-9, delay2=1e-6, tau2=1e-9):
        self.v1 = parse_value(v1)
        self.v2 = parse_value(v2)
        self.delay1 = parse_value(delay1)
        self.tau1 = max(parse_value(tau1), 1e-15)
        self.delay2 = parse_value(delay2)
        self.tau2 = max(parse_value(tau2), 1e-15)

    def value(self, time: float) -> float:
        v = self.v1
        if time >= self.delay1:
            v += (self.v2 - self.v1) * (1.0 - math.exp(-(time - self.delay1) / self.tau1))
        if time >= self.delay2:
            v += (self.v1 - self.v2) * (1.0 - math.exp(-(time - self.delay2) / self.tau2))
        return v

    def dc_value(self) -> float:
        return self.v1

    def spice_text(self) -> str:
        return (f"EXP({self.v1:g} {self.v2:g} {self.delay1:g} {self.tau1:g} "
                f"{self.delay2:g} {self.tau2:g})")


def _coerce_shape(value) -> SourceShape:
    if isinstance(value, SourceShape):
        return value
    return DCShape(value)


class IndependentSource(Device):
    """Common behaviour of V and I sources."""

    NUM_TERMINALS = 2

    def __init__(self, name: str, node_pos: str, node_neg: str, value,
                 ac_magnitude: float = 0.0, ac_phase: float = 0.0):
        super().__init__(name, [node_pos, node_neg])
        self.shape = _coerce_shape(value)
        self.ac_magnitude = parse_value(ac_magnitude)
        self.ac_phase = parse_value(ac_phase)

    def source_value(self, state) -> float:
        """Instantaneous value, honouring DC sweep overrides and source
        stepping."""
        override = state.source_overrides.get(self.name.lower())
        if override is not None:
            base = override
        elif state.mode == "tran":
            base = self.shape.value(state.time)
        else:
            base = self.shape.dc_value()
        return base * state.source_factor

    def ac_value(self) -> complex:
        phase = math.radians(self.ac_phase)
        return self.ac_magnitude * complex(math.cos(phase), math.sin(phase))


class VoltageSource(IndependentSource):
    """Independent voltage source; introduces one branch-current unknown."""

    PREFIX = "V"

    def branch_count(self) -> int:
        return 1

    def stamp(self, system, state) -> None:
        pos, neg = self._idx
        br = self.branch_index
        system.add(pos, br, 1.0)
        system.add(neg, br, -1.0)
        system.add(br, pos, 1.0)
        system.add(br, neg, -1.0)
        system.add_rhs(br, self.source_value(state))

    def stamp_ac(self, system, state) -> None:
        pos, neg = self._idx
        br = self.branch_index
        system.add(pos, br, 1.0)
        system.add(neg, br, -1.0)
        system.add(br, pos, 1.0)
        system.add(br, neg, -1.0)
        system.add_rhs(br, self.ac_value())

    def current(self, state) -> float:
        """Current delivered by the source (flowing out of the + terminal
        through the external circuit)."""
        return state.x[self.branch_index]


class CurrentSource(IndependentSource):
    """Independent current source; current flows from n+ to n- internally."""

    PREFIX = "I"

    def stamp(self, system, state) -> None:
        pos, neg = self._idx
        stamp_current_source(system, pos, neg, self.source_value(state))

    def stamp_ac(self, system, state) -> None:
        pos, neg = self._idx
        stamp_current_source(system, pos, neg, self.ac_value())
