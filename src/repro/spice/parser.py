"""Parser for a SPICE netlist dialect.

The dialect covers what the tool chain needs: the standard element cards
(R, C, L, V, I, D, M, E, G, F, H, S, X), ``.model``, ``.subckt``/``.ends``
with flattening, ``.ic``, ``.options``, ``.param`` (literal substitution),
analysis cards (``.op``, ``.dc``, ``.ac``, ``.tran``) and ``.end``.

The entry point is :func:`parse_netlist`, which returns a
:class:`ParsedNetlist` bundling the flattened :class:`~repro.spice.netlist.Circuit`
with the requested analyses and initial conditions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import NetlistError
from ..units import parse_value
from .netlist import Circuit, Model, normalize_node
from .devices import (
    Capacitor,
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    CurrentSource,
    DCShape,
    Diode,
    ExpShape,
    Inductor,
    Mosfet,
    PulseShape,
    PWLShape,
    Resistor,
    SinShape,
    VoltageControlledCurrentSource,
    VoltageControlledSwitch,
    VoltageControlledVoltageSource,
    VoltageSource,
)

_ELEMENT_LETTERS = set("rclvidmegfhsx")
_DIRECTIVE_RE = re.compile(r"^\s*\.")


@dataclass
class AnalysisRequest:
    """A ``.op`` / ``.dc`` / ``.ac`` / ``.tran`` card found in the netlist."""

    kind: str
    args: list[str] = field(default_factory=list)


@dataclass
class ParsedNetlist:
    """Everything extracted from a netlist file."""

    circuit: Circuit
    analyses: list[AnalysisRequest] = field(default_factory=list)
    initial_conditions: dict[str, float] = field(default_factory=dict)
    options: dict[str, float] = field(default_factory=dict)
    parameters: dict[str, float] = field(default_factory=dict)


@dataclass
class _Subcircuit:
    name: str
    ports: list[str]
    lines: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Line-level preprocessing
# ---------------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    for marker in (";", "$ "):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.rstrip()


def _join_continuations(lines: list[str]) -> list[str]:
    joined: list[str] = []
    for raw in lines:
        line = _strip_comment(raw.rstrip("\n"))
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+"):
            if not joined:
                raise NetlistError("continuation line with nothing to continue")
            joined[-1] += " " + line.lstrip()[1:].strip()
        else:
            joined.append(line.strip())
    return joined


def _looks_like_card(line: str) -> bool:
    stripped = line.strip()
    if not stripped:
        return False
    if _DIRECTIVE_RE.match(stripped):
        return True
    first = stripped[0].lower()
    return first in _ELEMENT_LETTERS and (len(stripped) > 1)


_TOKEN_RE = re.compile(r"[^\s()=]+\([^()]*\)|[^\s=]+=\S+|[^\s]+")


def _tokenize(line: str) -> list[str]:
    """Split a card into tokens, keeping ``func(...)`` groups and ``k=v``
    assignments together."""
    # Normalise "PULSE ( ... )" to "PULSE(...)" before tokenising.
    compact = re.sub(r"\s*\(\s*", "(", line)
    compact = re.sub(r"\s*\)", ")", compact)
    compact = re.sub(r"\s*=\s*", "=", compact)
    return _TOKEN_RE.findall(compact)


def _split_params(tokens: list[str]) -> tuple[list[str], dict[str, str]]:
    """Split positional tokens from key=value parameters."""
    positional: list[str] = []
    params: dict[str, str] = {}
    for token in tokens:
        if "=" in token and not token.startswith("="):
            key, _, value = token.partition("=")
            params[key.lower()] = value
        else:
            positional.append(token)
    return positional, params


# ---------------------------------------------------------------------------
# Source shape parsing
# ---------------------------------------------------------------------------

_SHAPE_RE = re.compile(r"^(pulse|sin|pwl|exp|dc)\((.*)\)$", re.IGNORECASE)


def _parse_source_tokens(tokens: list[str]) -> tuple[object, float, float]:
    """Parse the value part of a V/I card.

    Returns (shape_or_value, ac_magnitude, ac_phase).
    """
    shape = None
    dc_value = None
    ac_magnitude = 0.0
    ac_phase = 0.0
    index = 0
    while index < len(tokens):
        token = tokens[index]
        lower = token.lower()
        match = _SHAPE_RE.match(lower)
        if match:
            kind = match.group(1)
            args = [a for a in re.split(r"[\s,]+", match.group(2).strip()) if a]
            shape = _build_shape(kind, args)
            index += 1
            continue
        if lower == "dc":
            index += 1
            if index >= len(tokens):
                raise NetlistError("DC keyword without a value")
            dc_value = parse_value(tokens[index])
            index += 1
            continue
        if lower == "ac":
            index += 1
            if index < len(tokens):
                ac_magnitude = parse_value(tokens[index])
                index += 1
            if index < len(tokens):
                try:
                    ac_phase = parse_value(tokens[index])
                    index += 1
                except Exception:
                    pass
            continue
        if lower in ("pulse", "sin", "pwl", "exp"):
            # Shape keyword with space-separated args until end of card.
            args = tokens[index + 1:]
            shape = _build_shape(lower, args)
            index = len(tokens)
            continue
        # Bare number: DC value.
        dc_value = parse_value(token)
        index += 1
    if shape is None:
        shape = DCShape(dc_value if dc_value is not None else 0.0)
    return shape, ac_magnitude, ac_phase


def _build_shape(kind: str, args: list[str]):
    values = [parse_value(a) for a in args]
    kind = kind.lower()
    if kind == "dc":
        return DCShape(values[0] if values else 0.0)
    if kind == "pulse":
        return PulseShape(*values)
    if kind == "sin":
        return SinShape(*values)
    if kind == "exp":
        return ExpShape(*values)
    if kind == "pwl":
        if len(values) % 2:
            raise NetlistError("PWL needs an even number of values")
        points = list(zip(values[0::2], values[1::2]))
        return PWLShape(points)
    raise NetlistError(f"unknown source shape {kind!r}")


# ---------------------------------------------------------------------------
# Element construction
# ---------------------------------------------------------------------------

def _build_element(tokens: list[str]) -> object:
    name = tokens[0]
    letter = name[0].lower()
    rest = tokens[1:]
    positional, params = _split_params(rest)

    if letter == "r":
        _require(positional, 3, name)
        return Resistor(name, positional[0], positional[1], positional[2])
    if letter == "c":
        _require(positional, 3, name)
        ic = params.get("ic")
        return Capacitor(name, positional[0], positional[1], positional[2], ic=ic)
    if letter == "l":
        _require(positional, 3, name)
        ic = params.get("ic")
        return Inductor(name, positional[0], positional[1], positional[2], ic=ic)
    if letter in ("v", "i"):
        if len(positional) < 2:
            raise NetlistError(f"source {name!r} needs two nodes")
        shape, ac_mag, ac_phase = _parse_source_tokens(positional[2:])
        cls = VoltageSource if letter == "v" else CurrentSource
        return cls(name, positional[0], positional[1], shape,
                   ac_magnitude=ac_mag, ac_phase=ac_phase)
    if letter == "d":
        _require(positional, 3, name)
        area = parse_value(positional[3]) if len(positional) > 3 else 1.0
        return Diode(name, positional[0], positional[1], positional[2], area=area)
    if letter == "m":
        if len(positional) < 5:
            raise NetlistError(f"MOSFET {name!r} needs 4 nodes and a model")
        keyword_args = {}
        for key in ("w", "l", "ad", "pd", "ps", "m"):
            if key in params:
                keyword_args[key] = parse_value(params[key])
        if "as" in params:
            keyword_args["as_"] = parse_value(params["as"])
        return Mosfet(name, positional[0], positional[1], positional[2],
                      positional[3], positional[4], **keyword_args)
    if letter == "e":
        _require(positional, 5, name)
        return VoltageControlledVoltageSource(name, *positional[:4],
                                              positional[4])
    if letter == "g":
        _require(positional, 5, name)
        return VoltageControlledCurrentSource(name, *positional[:4],
                                              positional[4])
    if letter == "f":
        _require(positional, 4, name)
        return CurrentControlledCurrentSource(name, positional[0], positional[1],
                                              positional[2], positional[3])
    if letter == "h":
        _require(positional, 4, name)
        return CurrentControlledVoltageSource(name, positional[0], positional[1],
                                              positional[2], positional[3])
    if letter == "s":
        _require(positional, 5, name)
        return VoltageControlledSwitch(name, positional[0], positional[1],
                                       positional[2], positional[3],
                                       positional[4])
    raise NetlistError(f"unsupported element {name!r}")


def _require(positional: list[str], count: int, name: str) -> None:
    if len(positional) < count:
        raise NetlistError(
            f"element {name!r}: expected at least {count} fields, "
            f"got {len(positional)}")


# ---------------------------------------------------------------------------
# Main parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str, title: str | None = None):
        self.raw_lines = text.splitlines()
        self.title = title
        self.result: ParsedNetlist | None = None
        self.subcircuits: dict[str, _Subcircuit] = {}

    def parse(self) -> ParsedNetlist:
        lines = list(self.raw_lines)
        title = self.title
        if title is None:
            title = ""
            # SPICE convention: the first non-blank line is the title line.
            # Comment and directive lines are left in place (netlist
            # fragments without a title still parse).
            for position, line in enumerate(lines):
                stripped = line.strip()
                if not stripped:
                    continue
                if not stripped.startswith("*") and not stripped.startswith("."):
                    title = stripped
                    lines = lines[position + 1:]
                break
        cards = _join_continuations(lines)

        circuit = Circuit(title)
        parsed = ParsedNetlist(circuit)
        element_cards: list[list[str]] = []
        instance_cards: list[list[str]] = []

        current_sub: _Subcircuit | None = None
        for card in cards:
            lower = card.lower()
            if current_sub is not None:
                if lower.startswith(".ends"):
                    self.subcircuits[current_sub.name] = current_sub
                    current_sub = None
                else:
                    current_sub.lines.append(card)
                continue
            if lower.startswith(".subckt"):
                tokens = card.split()
                if len(tokens) < 2:
                    raise NetlistError(".subckt needs a name")
                current_sub = _Subcircuit(tokens[1].lower(),
                                          [normalize_node(t) for t in tokens[2:]])
                continue
            if lower.startswith(".model"):
                self._parse_model(card, circuit)
                continue
            if lower.startswith(".param"):
                self._parse_param(card, parsed)
                continue
            if lower.startswith(".options") or lower.startswith(".option"):
                self._parse_options(card, parsed)
                continue
            if lower.startswith(".ic"):
                self._parse_ic(card, parsed)
                continue
            if lower.startswith((".op", ".dc", ".ac", ".tran")):
                tokens = card.split()
                parsed.analyses.append(
                    AnalysisRequest(tokens[0][1:].lower(), tokens[1:]))
                continue
            if lower.startswith(".end"):
                break
            if lower.startswith("."):
                raise NetlistError(f"unsupported directive {card.split()[0]!r}")
            tokens = _tokenize(self._substitute_params(card, parsed))
            if tokens[0][0].lower() == "x":
                instance_cards.append(tokens)
            else:
                element_cards.append(tokens)

        if current_sub is not None:
            raise NetlistError(f"unterminated .subckt {current_sub.name!r}")

        for tokens in element_cards:
            circuit.add(_build_element(tokens))
        for tokens in instance_cards:
            self._expand_instance(tokens, circuit, parsed, prefix="")
        self.result = parsed
        return parsed

    # ------------------------------------------------------------------
    def _substitute_params(self, card: str, parsed: ParsedNetlist) -> str:
        if not parsed.parameters:
            return card
        tokens = card.split()
        substituted = []
        for token in tokens:
            key = token.lower()
            if key.startswith("{") and key.endswith("}"):
                key = key[1:-1]
            if key in parsed.parameters:
                substituted.append(str(parsed.parameters[key]))
            else:
                substituted.append(token)
        return " ".join(substituted)

    def _parse_model(self, card: str, circuit: Circuit) -> None:
        tokens = _tokenize(card)
        if len(tokens) < 3:
            raise NetlistError(f"malformed .model card: {card!r}")
        name = tokens[1]
        kind_token = tokens[2]
        params: dict[str, float] = {}
        kind = kind_token
        # Syntax ".model name type(k=v ...)" or ".model name type k=v ..."
        match = re.match(r"^(\w+)\((.*)\)$", kind_token)
        remaining = tokens[3:]
        if match:
            kind = match.group(1)
            remaining = match.group(2).split() + remaining
        for token in remaining:
            if "=" not in token:
                continue
            key, _, value = token.partition("=")
            params[key.lower()] = parse_value(value)
        circuit.add_model(Model(name, kind, **params))

    def _parse_param(self, card: str, parsed: ParsedNetlist) -> None:
        for token in _tokenize(card)[1:]:
            if "=" not in token:
                raise NetlistError(f".param entries need key=value: {card!r}")
            key, _, value = token.partition("=")
            parsed.parameters[key.lower()] = parse_value(value)

    def _parse_options(self, card: str, parsed: ParsedNetlist) -> None:
        for token in _tokenize(card)[1:]:
            if "=" in token:
                key, _, value = token.partition("=")
                parsed.options[key.lower()] = parse_value(value)
            else:
                parsed.options[token.lower()] = 1.0

    def _parse_ic(self, card: str, parsed: ParsedNetlist) -> None:
        entries = re.findall(r"v\(([^)]+)\)\s*=\s*(\S+)", card, flags=re.IGNORECASE)
        if not entries:
            raise NetlistError(f".ic entries need v(node)=value: {card!r}")
        for node, value in entries:
            parsed.initial_conditions[normalize_node(node)] = parse_value(value)

    # ------------------------------------------------------------------
    def _expand_instance(self, tokens: list[str], circuit: Circuit,
                         parsed: ParsedNetlist, prefix: str,
                         depth: int = 0) -> None:
        if depth > 20:
            raise NetlistError("subcircuit nesting too deep (recursion?)")
        positional, _params = _split_params(tokens[1:])
        if len(positional) < 1:
            raise NetlistError(f"malformed subcircuit instance: {tokens!r}")
        instance_name = prefix + tokens[0]
        sub_name = positional[-1].lower()
        connection_nodes = [normalize_node(n) for n in positional[:-1]]
        if sub_name not in self.subcircuits:
            raise NetlistError(f"unknown subcircuit {sub_name!r}")
        sub = self.subcircuits[sub_name]
        if len(connection_nodes) != len(sub.ports):
            raise NetlistError(
                f"instance {instance_name!r}: {len(connection_nodes)} nodes "
                f"given, subcircuit {sub_name!r} has {len(sub.ports)} ports")
        port_map = dict(zip(sub.ports, connection_nodes))

        def map_node(node: str) -> str:
            node = normalize_node(node)
            if node in port_map:
                return port_map[node]
            if node == "0":
                return node
            return f"{instance_name.lower()}.{node}"

        for card in sub.lines:
            card_tokens = _tokenize(self._substitute_params(card, parsed))
            letter = card_tokens[0][0].lower()
            # Flattened device names keep their element letter in front so
            # the name still identifies the device type: "R1" inside "X1"
            # becomes "R1.X1".
            if letter == "x":
                renamed = [f"{card_tokens[0]}.{instance_name}"]
                positional_inner, params_inner = _split_params(card_tokens[1:])
                mapped = [map_node(n) for n in positional_inner[:-1]]
                renamed.extend(mapped)
                renamed.append(positional_inner[-1])
                renamed.extend(f"{k}={v}" for k, v in params_inner.items())
                self._expand_instance(renamed, circuit, parsed,
                                      prefix="", depth=depth + 1)
                continue
            node_counts = {"r": 2, "c": 2, "l": 2, "v": 2, "i": 2, "d": 2,
                           "m": 4, "e": 4, "g": 4, "f": 2, "h": 2, "s": 4}
            if letter not in node_counts:
                raise NetlistError(
                    f"unsupported element inside subcircuit: {card!r}")
            count = node_counts[letter]
            new_tokens = [f"{card_tokens[0]}.{instance_name}"]
            positional_inner, params_inner = _split_params(card_tokens[1:])
            for position, token in enumerate(positional_inner):
                if position < count:
                    new_tokens.append(map_node(token))
                else:
                    new_tokens.append(token)
            new_tokens.extend(f"{k}={v}" for k, v in params_inner.items())
            circuit.add(_build_element(new_tokens))


def parse_netlist(text: str, title: str | None = None) -> ParsedNetlist:
    """Parse a SPICE netlist string into a :class:`ParsedNetlist`."""
    return _Parser(text, title).parse()


def parse_netlist_file(path) -> ParsedNetlist:
    """Parse a SPICE netlist file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_netlist(handle.read())
