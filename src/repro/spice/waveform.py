"""Waveform container used to exchange simulation results.

A :class:`Waveform` is an (x, y) sampled signal -- typically node voltage
versus time -- with the small set of operations the AnaFAULT comparator
needs: interpolation, resampling, min/max, and difference metrics under a
time tolerance.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError


class Waveform:
    """A sampled signal y(x) with monotonically non-decreasing x."""

    def __init__(self, x: Sequence[float], y: Sequence[float], name: str = "",
                 unit: str = "V", x_unit: str = "s"):
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y)
        if self.x.ndim != 1 or self.y.ndim != 1:
            raise AnalysisError("waveform arrays must be one-dimensional")
        if self.x.shape != self.y.shape:
            raise AnalysisError(
                f"waveform {name!r}: x has {self.x.size} samples, "
                f"y has {self.y.size}")
        if self.x.size and np.any(np.diff(self.x) < 0.0):
            raise AnalysisError(f"waveform {name!r}: x must be non-decreasing")
        self.name = name
        self.unit = unit
        self.x_unit = x_unit

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.x.size)

    def __iter__(self):
        return iter(zip(self.x, self.y))

    @property
    def nbytes(self) -> int:
        """Memory footprint of the sample data (both axes) in bytes.

        Note this counts x *and* y; the kernel's ``stats["trace_bytes"]``
        telemetry counts only the trace matrix (y columns), so the two
        measures differ by the shared time axis.
        """
        return int(self.x.nbytes) + int(self.y.nbytes)

    def downsample(self, every: int) -> "Waveform":
        """Every ``every``-th sample plus the final one (reporting tails).

        Keeps the end point so ``final_value()`` and detection checks near
        ``tstop`` survive the decimation.
        """
        if every <= 1 or self.x.size <= 2:
            return Waveform(self.x, self.y, self.name, self.unit, self.x_unit)
        keep = np.arange(0, self.x.size, every)
        if keep[-1] != self.x.size - 1:
            keep = np.append(keep, self.x.size - 1)
        return Waveform(self.x[keep], self.y[keep], self.name, self.unit,
                        self.x_unit)

    def value_at(self, x: float) -> float:
        """Linearly interpolated value at ``x`` (clamped at the ends)."""
        if self.x.size == 0:
            raise AnalysisError(f"waveform {self.name!r} is empty")
        return float(np.interp(x, self.x, self.y))

    def values_at(self, xs: Iterable[float]) -> np.ndarray:
        """Vectorised linear interpolation."""
        return np.interp(np.asarray(list(xs), dtype=float), self.x, self.y)

    def resample(self, xs: Sequence[float]) -> "Waveform":
        """Return a new waveform sampled on the given x grid."""
        xs = np.asarray(xs, dtype=float)
        return Waveform(xs, np.interp(xs, self.x, self.y), self.name,
                        self.unit, self.x_unit)

    def slice(self, x_min: float, x_max: float) -> "Waveform":
        """Return the part of the waveform with ``x_min <= x <= x_max``."""
        mask = (self.x >= x_min) & (self.x <= x_max)
        return Waveform(self.x[mask], self.y[mask], self.name, self.unit,
                        self.x_unit)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def minimum(self) -> float:
        return float(np.min(self.y))

    def maximum(self) -> float:
        return float(np.max(self.y))

    def peak_to_peak(self) -> float:
        return self.maximum() - self.minimum()

    def mean(self) -> float:
        return float(np.mean(self.y))

    def rms(self) -> float:
        return float(np.sqrt(np.mean(np.square(np.abs(self.y)))))

    def final_value(self) -> float:
        return float(self.y[-1])

    # ------------------------------------------------------------------
    # Signal processing helpers
    # ------------------------------------------------------------------
    def crossings(self, level: float, rising: bool | None = None) -> np.ndarray:
        """Return the x positions where the waveform crosses ``level``.

        ``rising=True`` keeps only upward crossings, ``False`` only downward
        ones, ``None`` keeps both.
        """
        if self.x.size < 2:
            return np.empty(0)
        below = self.y[:-1] < level
        above = self.y[1:] >= level
        up = below & above
        down = (~below) & (~above)
        if rising is True:
            mask = up
        elif rising is False:
            mask = down
        else:
            mask = up | down
        indices = np.nonzero(mask)[0]
        crossings = []
        for i in indices:
            y0, y1 = self.y[i], self.y[i + 1]
            if y1 == y0:
                crossings.append(self.x[i])
            else:
                frac = (level - y0) / (y1 - y0)
                crossings.append(self.x[i] + frac * (self.x[i + 1] - self.x[i]))
        return np.asarray(crossings)

    def frequency(self, level: float | None = None) -> float:
        """Estimate the fundamental frequency from rising crossings.

        Returns 0.0 when fewer than two rising crossings exist (no
        oscillation).
        """
        if level is None:
            level = 0.5 * (self.minimum() + self.maximum())
        rising = self.crossings(level, rising=True)
        if rising.size < 2:
            return 0.0
        periods = np.diff(rising)
        periods = periods[periods > 0.0]
        if periods.size == 0:
            return 0.0
        return float(1.0 / np.mean(periods))

    def oscillates(self, min_swing: float = 1.0, min_cycles: int = 2) -> bool:
        """Heuristic oscillation detector used by the VCO examples/tests."""
        if self.peak_to_peak() < min_swing:
            return False
        level = 0.5 * (self.minimum() + self.maximum())
        return self.crossings(level, rising=True).size >= min_cycles

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def difference(self, other: "Waveform") -> "Waveform":
        """Pointwise difference self - other on this waveform's grid."""
        other_y = np.interp(self.x, other.x, other.y)
        return Waveform(self.x, self.y - other_y, f"{self.name}-{other.name}",
                        self.unit, self.x_unit)

    def max_abs_error(self, other: "Waveform") -> float:
        return float(np.max(np.abs(self.difference(other).y))) if len(self) else 0.0

    # ------------------------------------------------------------------
    # Arithmetic conveniences
    # ------------------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, Waveform):
            other = np.interp(self.x, other.x, other.y)
        return Waveform(self.x, self.y + other, self.name, self.unit, self.x_unit)

    def __sub__(self, other):
        if isinstance(other, Waveform):
            other = np.interp(self.x, other.x, other.y)
        return Waveform(self.x, self.y - other, self.name, self.unit, self.x_unit)

    def __mul__(self, scale: float):
        return Waveform(self.x, self.y * scale, self.name, self.unit, self.x_unit)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Waveform({self.name!r}, {len(self)} samples, "
                f"[{self.minimum():.3g}, {self.maximum():.3g}] {self.unit})")


def ascii_plot(waveforms: Sequence[Waveform], width: int = 72, height: int = 18,
               title: str = "") -> str:
    """Render one or more waveforms as an ASCII chart (reports/benchmarks)."""
    if not waveforms:
        return "(no data)"
    markers = "*o+x#@"
    x_min = min(w.x.min() for w in waveforms if len(w))
    x_max = max(w.x.max() for w in waveforms if len(w))
    y_min = min(w.minimum() for w in waveforms if len(w))
    y_max = max(w.maximum() for w in waveforms if len(w))
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, wave in enumerate(waveforms):
        marker = markers[index % len(markers)]
        xs = np.linspace(x_min, x_max, width)
        ys = wave.values_at(xs)
        for col, value in enumerate(ys):
            row = int(round((y_max - value) / (y_max - y_min) * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_min:10.3g} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_min:<12.3g}" + " " * max(width - 24, 0) + f"{x_max:>12.3g}")
    legend = "  ".join(f"{markers[i % len(markers)]} {w.name or f'wave{i}'}"
                       for i, w in enumerate(waveforms))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
