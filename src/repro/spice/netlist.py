"""Circuit data model.

A :class:`Circuit` is an ordered collection of device instances plus a set of
``.model`` cards.  It is the common currency of the whole tool chain: the
schematic entry produces a Circuit, the layout extractor produces a Circuit,
the AnaFAULT fault injector rewrites copies of a Circuit, and the analyses in
:mod:`repro.spice.analysis` consume one.
"""

from __future__ import annotations

import copy
from collections import defaultdict
from typing import Iterable, Iterator, Mapping

from ..errors import ModelError, NetlistError

#: Node names that are treated as the global reference node.
GROUND_ALIASES = frozenset({"0", "gnd", "ground", "vss!", "gnd!"})
#: Canonical ground node name.
GROUND = "0"


def normalize_node(name: str | int) -> str:
    """Return the canonical form of a node name.

    Node names are case-insensitive; all ground aliases map to ``"0"``.
    """
    text = str(name).strip().lower()
    if not text:
        raise NetlistError("empty node name")
    if text in GROUND_ALIASES:
        return GROUND
    return text


class Model:
    """A ``.model`` card: a named bag of device parameters.

    Parameters
    ----------
    name:
        Model name referenced by device instances.
    kind:
        Device family, e.g. ``"nmos"``, ``"pmos"``, ``"d"``, ``"sw"``.
    params:
        Keyword parameters (lower-case keys).
    """

    def __init__(self, name: str, kind: str, **params: float):
        self.name = str(name).lower()
        self.kind = str(kind).lower()
        self.params = {str(k).lower(): v for k, v in params.items()}

    def get(self, key: str, default: float | None = None) -> float | None:
        return self.params.get(key.lower(), default)

    def copy(self) -> "Model":
        return Model(self.name, self.kind, **self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Model({self.name!r}, {self.kind!r}, {self.params})"


class Circuit:
    """A flat circuit: devices, models and node bookkeeping.

    Devices are stored in insertion order under unique (case-insensitive)
    names.  The ground node is always called ``"0"``.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._devices: dict[str, "object"] = {}
        self.models: dict[str, Model] = {}
        #: Free-form metadata (used e.g. by the extractor to attach net areas).
        self.metadata: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------
    def add(self, device) -> "Circuit":
        """Add a device instance; returns ``self`` for chaining."""
        key = device.name.lower()
        if key in self._devices:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self._devices[key] = device
        return self

    def remove(self, name: str) -> None:
        """Remove the device with the given name."""
        key = name.lower()
        if key not in self._devices:
            raise NetlistError(f"no device named {name!r}")
        del self._devices[key]

    def replace(self, device) -> None:
        """Replace an existing device of the same name."""
        key = device.name.lower()
        if key not in self._devices:
            raise NetlistError(f"no device named {device.name!r} to replace")
        self._devices[key] = device

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._devices

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator:
        return iter(self._devices.values())

    @property
    def devices(self) -> list:
        """Devices in insertion order."""
        return list(self._devices.values())

    def device(self, name: str):
        """Return the device with the given name."""
        key = name.lower()
        try:
            return self._devices[key]
        except KeyError:
            raise NetlistError(f"no device named {name!r}") from None

    def devices_of_type(self, cls) -> list:
        """Return all devices that are instances of ``cls``."""
        return [d for d in self._devices.values() if isinstance(d, cls)]

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def add_model(self, model: Model) -> "Circuit":
        self.models[model.name] = model
        return self

    def model(self, name: str) -> Model:
        key = str(name).lower()
        try:
            return self.models[key]
        except KeyError:
            raise ModelError(f"no .model card named {name!r}") from None

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------
    def nodes(self, include_ground: bool = False) -> list[str]:
        """Return the sorted list of node names used by the circuit."""
        seen: set[str] = set()
        for device in self._devices.values():
            seen.update(device.nodes)
        if not include_ground:
            seen.discard(GROUND)
        return sorted(seen)

    def node_degree(self) -> dict[str, int]:
        """Return, for every node, the number of device terminals attached."""
        degree: dict[str, int] = defaultdict(int)
        for device in self._devices.values():
            for node in device.nodes:
                degree[node] += 1
        return dict(degree)

    def devices_on_node(self, node: str) -> list:
        """Return devices with at least one terminal on ``node``."""
        node = normalize_node(node)
        return [d for d in self._devices.values() if node in d.nodes]

    def has_node(self, node: str) -> bool:
        node = normalize_node(node)
        if node == GROUND:
            return True
        return any(node in d.nodes for d in self._devices.values())

    # ------------------------------------------------------------------
    # Rewriting primitives (used by the fault injector)
    # ------------------------------------------------------------------
    def rename_node(self, old: str, new: str,
                    only_devices: Iterable[str] | None = None) -> int:
        """Rename node ``old`` to ``new`` on all (or selected) devices.

        Returns the number of terminals rewritten.  Merging two nodes is
        simply a rename of one onto the other; splitting a node is a rename
        restricted to a subset of devices via ``only_devices``.
        """
        old = normalize_node(old)
        new = normalize_node(new)
        restrict = None
        if only_devices is not None:
            restrict = {n.lower() for n in only_devices}
        count = 0
        for key, device in self._devices.items():
            if restrict is not None and key not in restrict:
                continue
            count += device.rename_node(old, new)
        return count

    def fresh_node(self, prefix: str = "n_fault") -> str:
        """Return a node name not yet used in the circuit."""
        existing = set(self.nodes(include_ground=True))
        index = 1
        while True:
            candidate = f"{prefix}{index}"
            if candidate not in existing:
                return candidate
            index += 1

    def fresh_device_name(self, prefix: str) -> str:
        """Return a device name not yet used in the circuit."""
        index = 1
        while True:
            candidate = f"{prefix}{index}"
            if candidate.lower() not in self._devices:
                return candidate
            index += 1

    # ------------------------------------------------------------------
    # Copies and summaries
    # ------------------------------------------------------------------
    def clone(self) -> "Circuit":
        """Return an independent deep copy of the circuit."""
        return copy.deepcopy(self)

    def summary(self) -> Mapping[str, int]:
        """Return a per-device-class instance count."""
        counts: dict[str, int] = defaultdict(int)
        for device in self._devices.values():
            counts[type(device).__name__] += 1
        return dict(counts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"Circuit({self.title!r}, devices={len(self._devices)}, "
                f"nodes={len(self.nodes())})")
