"""A small SPICE-class analogue circuit simulator.

This subpackage is the kernel-simulator substrate required by AnaFAULT.  It
provides:

* a circuit data model (:mod:`repro.spice.netlist`) with SPICE-compatible
  device classes (:mod:`repro.spice.devices`),
* a netlist parser and writer for a SPICE dialect
  (:mod:`repro.spice.parser`, :mod:`repro.spice.writer`),
* DC operating point, DC sweep, AC and transient analyses built on modified
  nodal analysis with Newton-Raphson iteration
  (:mod:`repro.spice.analysis`), and
* a :class:`~repro.spice.waveform.Waveform` container used to exchange
  simulation results with the fault comparator.
"""

from .netlist import Circuit, Model
from .devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    VoltageControlledCurrentSource,
    VoltageControlledSwitch,
    VoltageControlledVoltageSource,
    CurrentControlledCurrentSource,
    CurrentControlledVoltageSource,
    VoltageSource,
)
from .analysis import (
    ACAnalysis,
    DCSweepAnalysis,
    DenseSolverBackend,
    OperatingPointAnalysis,
    SolverBackend,
    SparseSolverBackend,
    TransientAnalysis,
    TransientOptions,
    TransientResult,
    OperatingPoint,
    SimulationOptions,
    select_backend,
)
from .parser import parse_netlist
from .writer import write_netlist
from .waveform import Waveform

__all__ = [
    "Circuit",
    "Model",
    "Resistor",
    "Capacitor",
    "Inductor",
    "Diode",
    "Mosfet",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledVoltageSource",
    "VoltageControlledCurrentSource",
    "CurrentControlledCurrentSource",
    "CurrentControlledVoltageSource",
    "VoltageControlledSwitch",
    "OperatingPointAnalysis",
    "DCSweepAnalysis",
    "ACAnalysis",
    "TransientAnalysis",
    "TransientOptions",
    "TransientResult",
    "OperatingPoint",
    "SimulationOptions",
    "SolverBackend",
    "DenseSolverBackend",
    "SparseSolverBackend",
    "select_backend",
    "parse_netlist",
    "write_netlist",
    "Waveform",
]
