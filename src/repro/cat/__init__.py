"""The integrated CAT environment (LIFT + AnaFAULT, Fig. 1)."""

from .flow import CATFlow, CATOptions, CATResult

__all__ = ["CATFlow", "CATOptions", "CATResult"]
