"""The end-to-end CAT flow of Fig. 1.

``CATFlow`` glues the individual tools together the way the paper describes
the design/test process:

1. start from the schematic and (optionally) its complete fault list,
2. optionally reduce it pre-layout with L2RFM,
3. once the layout exists, extract the circuit and run LIFT (GLRFM) to get
   the weighted realistic fault list,
4. hand the fault list to AnaFAULT, simulate, and report fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..anafault import (CampaignResult, CampaignSettings, FaultSimulator,
                        PoolExecutor)
from ..defects import DefectSizeDistribution, DefectStatistics
from ..extract import ExtractionResult, LVSReport, compare, extract_netlist
from ..layout import Layout
from ..lift import (
    FaultExtractionOptions,
    FaultExtractor,
    FaultList,
    faults_covering_fraction,
    l2rfm_fault_list,
    schematic_fault_list,
)
from ..spice import Circuit


@dataclass
class CATOptions:
    """Options of the end-to-end flow."""

    statistics: DefectStatistics = field(default_factory=DefectStatistics.table_1)
    distribution: DefectSizeDistribution = field(default_factory=DefectSizeDistribution)
    extraction_options: FaultExtractionOptions = field(
        default_factory=lambda: FaultExtractionOptions(min_probability=1e-9))
    #: Keep only the most likely faults covering this fraction of the total
    #: occurrence probability (LIFT "identifies and ranks the most likely
    #: realistic faults").  1.0 keeps everything above the threshold.
    probability_coverage: float = 0.95
    campaign: CampaignSettings = field(default_factory=CampaignSettings)


@dataclass
class CATResult:
    """Everything produced by one run of the flow."""

    schematic: Circuit
    layout: Layout
    extraction: ExtractionResult
    lvs: LVSReport
    schematic_faults: FaultList
    l2rfm_faults: FaultList
    realistic_faults: FaultList
    campaign: CampaignResult | None = None

    def fault_list_sizes(self) -> dict[str, int]:
        """The Fig. 1 funnel: fault list size at each stage."""
        return {
            "all_faults": len(self.schematic_faults),
            "l2rfm": len(self.l2rfm_faults),
            "glrfm": len(self.realistic_faults),
        }

    def reduction_vs_schematic(self) -> float:
        total = len(self.schematic_faults)
        if total == 0:
            return 0.0
        return 1.0 - len(self.realistic_faults) / total


class CATFlow:
    """Run the complete CAT flow for one circuit and its layout."""

    def __init__(self, schematic: Circuit, layout: Layout,
                 options: CATOptions | None = None):
        self.schematic = schematic
        self.layout = layout
        self.options = options or CATOptions()

    # ------------------------------------------------------------------
    def extract_faults(self) -> CATResult:
        """Run extraction + LIFT without the fault simulation."""
        options = self.options
        extraction = extract_netlist(self.layout)
        lvs = compare(extraction.circuit, self.schematic)
        schematic_faults = schematic_fault_list(self.schematic)
        l2rfm_faults = l2rfm_fault_list(
            self.schematic, statistics=options.statistics,
            distribution=options.distribution)
        extractor = FaultExtractor(self.layout, extraction, self.schematic,
                                   lvs, options.statistics,
                                   options.distribution,
                                   options.extraction_options)
        realistic = extractor.run()
        if 0.0 < options.probability_coverage < 1.0:
            realistic = faults_covering_fraction(realistic,
                                                 options.probability_coverage)
        return CATResult(self.schematic, self.layout, extraction, lvs,
                         schematic_faults, l2rfm_faults, realistic)

    def run(self, workers: int = 1, fault_limit: int | None = None,
            fault_list: FaultList | None = None) -> CATResult:
        """Run the full flow including the AnaFAULT campaign.

        ``fault_limit`` truncates the realistic fault list (useful for quick
        runs); ``fault_list`` overrides LIFT's output entirely (e.g. to
        simulate the schematic fault list instead).
        """
        result = self.extract_faults()
        faults = fault_list if fault_list is not None else result.realistic_faults
        if fault_limit is not None:
            faults = faults.top(fault_limit)
        simulator = FaultSimulator(self.schematic, faults, self.options.campaign)
        # None keeps the defaultable serial path (REPRO_FORCE_BATCHED and
        # friends) instead of pinning an explicit SerialExecutor.
        executor = PoolExecutor(workers) if workers > 1 else None
        result.campaign = simulator.run(executor=executor)
        return result
