"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching programming errors.
(``tools/repro_lint.py`` enforces this invariant over ``src/repro``.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .lint import Diagnostic


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class UnitError(ReproError):
    """A numeric literal or engineering-unit suffix could not be parsed."""


class NetlistError(ReproError):
    """A circuit description is malformed (unknown node, duplicate element,
    bad parameter, unparsable netlist line, ...)."""


class ModelError(ReproError):
    """A device references an unknown or incompatible ``.model`` card."""


class AnalysisError(ReproError):
    """An analysis was requested with invalid parameters."""


class ConvergenceError(AnalysisError):
    """The Newton-Raphson iteration failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    worst_node:
        Name of the node with the largest remaining update, if known.
    """

    def __init__(self, message: str, iterations: int = 0,
                 worst_node: str | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.worst_node = worst_node


class TransientError(ConvergenceError):
    """The transient timestep controller gave up.

    Raised when the internal step has been driven down to the ``dt_min``
    floor and the step still cannot be accepted (Newton failure or a local
    truncation error above tolerance).  The message names the time point,
    the floor and the last LTE ratio so the failing region can be found.
    Subclasses :class:`ConvergenceError`, so campaign code that classifies
    non-convergent faults keeps working unchanged.
    """


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, voltage-source loop, ...)."""


class LayoutError(ReproError):
    """A layout object is malformed (negative width, unknown layer, ...)."""


class TechnologyError(LayoutError):
    """A technology file is inconsistent or a rule is missing."""


class ExtractionError(ReproError):
    """Circuit extraction from layout failed."""


class LVSError(ExtractionError):
    """The extracted netlist does not match the schematic netlist."""


class DefectModelError(ReproError):
    """The defect statistics description is inconsistent."""


class FaultError(ReproError):
    """A fault descriptor is invalid or cannot be injected."""


class FaultInjectionError(FaultError):
    """Injection of a fault into a circuit failed (missing node/element)."""


class CampaignError(ReproError):
    """A fault-simulation campaign could not be run or post-processed."""


class LintError(ReproError):
    """The static analyzer was misconfigured (unknown rule code, bad
    severity); *not* used for the defects the analyzer reports — those are
    :class:`repro.lint.Diagnostic` values, never exceptions."""


class PreflightError(CampaignError):
    """Campaign preflight refused to run the campaign.

    Raised by ``FaultSimulator.plan(preflight="error")`` when the static
    analyzer reports error-severity diagnostics.  The message lists *every*
    diagnostic (not just the first), and :attr:`diagnostics` carries the
    structured :class:`repro.lint.Diagnostic` list for tooling.
    """

    def __init__(self, message: str,
                 diagnostics: "Sequence[Diagnostic]" = ()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)
