#!/usr/bin/env python3
"""The paper's main experiment: layout-realistic fault simulation of the VCO.

The script runs the complete Fig. 1 flow on the 26-transistor VCO:

1. build the schematic and the generated layout,
2. extract the circuit from the layout and LVS it against the schematic,
3. run LIFT (GLRFM) to obtain the weighted realistic fault list,
4. run AnaFAULT on the most likely faults and print the detection table and
   the fault-coverage-versus-time plot (Fig. 5 style).

A full campaign over all extracted faults takes a few minutes; pass
``--faults N`` to simulate only the N most likely faults, or ``--full`` for
everything.

Run with:  python examples/vco_fault_campaign.py --faults 20
"""

import argparse

from repro.anafault import CampaignSettings, ToleranceSettings, full_report
from repro.cat import CATFlow, CATOptions
from repro.circuits import OUTPUT_NODE, build_vco_layout
from repro.lift import format_ranking


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--faults", type=int, default=20,
                        help="number of most-likely faults to simulate")
    parser.add_argument("--full", action="store_true",
                        help="simulate the complete realistic fault list")
    parser.add_argument("--workers", type=int, default=2,
                        help="parallel worker processes")
    parser.add_argument("--rfm-file", default=None,
                        help="optionally write the LIFT fault list to this file")
    args = parser.parse_args()

    print("building VCO schematic and layout ...")
    circuit, layout = build_vco_layout()
    print(f"  layout: {len(layout)} shapes, {layout.area():.0f} um^2")

    options = CATOptions()
    options.campaign = CampaignSettings(
        tstop=4e-6, tstep=1e-8, use_ic=True,
        observation_nodes=(OUTPUT_NODE,),
        tolerances=ToleranceSettings(amplitude=2.0, time=0.2e-6))
    flow = CATFlow(circuit, layout, options)

    print("running extraction and LIFT ...")
    extraction = flow.extract_faults()
    sizes = extraction.fault_list_sizes()
    print(f"  LVS: {extraction.lvs.summary()}")
    print(f"  fault lists: schematic={sizes['all_faults']}  "
          f"L2RFM={sizes['l2rfm']}  GLRFM={sizes['glrfm']}  "
          f"(reduction {extraction.reduction_vs_schematic():.0%})")
    print()
    print(format_ranking(extraction.realistic_faults, limit=15))

    if args.rfm_file:
        extraction.realistic_faults.dump(args.rfm_file)
        print(f"\nLIFT fault list written to {args.rfm_file}")

    fault_limit = None if args.full else args.faults
    print(f"\nrunning AnaFAULT campaign "
          f"({'all' if fault_limit is None else fault_limit} faults, "
          f"{args.workers} workers) ...")
    result = flow.run(workers=args.workers, fault_limit=fault_limit,
                      fault_list=extraction.realistic_faults)
    print()
    print(full_report(result.campaign))


if __name__ == "__main__":
    main()
