#!/usr/bin/env python3
"""LIFT in isolation: from layout geometry to a weighted realistic fault list.

The script demonstrates the layout side of the tool chain on a small CMOS
inverter so every intermediate result fits on the screen:

1. generate a layout for the circuit,
2. extract connectivity and devices back out of the geometry,
3. LVS the extracted netlist against the schematic,
4. evaluate defect statistics / critical areas (GLRFM) and print the ranked
   fault list,
5. cross-check the analytic bridge extraction against Monte-Carlo spot
   defects (inductive fault analysis).

Run with:  python examples/layout_fault_extraction.py
"""

from repro.circuits import build_cmos_inverter
from repro.defects import DefectSizeDistribution, DefectStatistics, SpotDefectSampler
from repro.extract import compare, extract_netlist
from repro.layout import generate_layout
from repro.layout import textio
from repro.lift import FaultExtractionOptions, FaultExtractor, format_ranking


def main() -> None:
    circuit = build_cmos_inverter()
    print(f"schematic: {circuit.title} with {len(circuit)} devices")

    # 1. Layout generation.
    layout = generate_layout(circuit)
    stats = layout.statistics()
    print(f"layout   : {int(stats['shape_count'])} shapes on "
          f"{len(layout.layers_used())} layers, "
          f"bounding box {layout.area():.0f} um^2")

    # 2./3. Extraction and LVS.
    extraction = extract_netlist(layout)
    report = compare(extraction.circuit, circuit)
    print(f"extract  : {extraction.summary()}")
    print(f"LVS      : {report.summary()}")

    # 4. GLRFM fault extraction.
    statistics = DefectStatistics.table_1()
    distribution = DefectSizeDistribution()
    extractor = FaultExtractor(layout, extraction, circuit,
                               statistics=statistics,
                               distribution=distribution,
                               options=FaultExtractionOptions(min_probability=1e-10))
    faults = extractor.run()
    print(f"\nLIFT     : {faults.summary()}\n")
    print(format_ranking(faults, limit=15))

    # 5. Monte-Carlo cross-check (inductive fault analysis).
    sampler = SpotDefectSampler(layout, extraction.connectivity, statistics,
                                distribution, seed=1995)
    monte_carlo = sampler.sample(2000)
    print("\nMonte-Carlo spot defects (2000 samples):",
          dict(monte_carlo.count_by_effect()))
    print("most frequent bridged net pairs:",
          monte_carlo.bridge_pairs().most_common(5))

    # The layout and the fault list can be written to their interchange
    # formats for use by external tools.
    print("\nlayout text format preview:")
    print("\n".join(textio.dumps(layout).splitlines()[:6]) + "\n...")
    print("\nfault list (RFM) preview:")
    print("\n".join(faults.dumps().splitlines()[:6]) + "\n...")


if __name__ == "__main__":
    main()
