#!/usr/bin/env python3
"""Quickstart: simulate a circuit, inject a fault, compare the responses.

This is the smallest end-to-end use of the library:

1. build a circuit with the SPICE substrate,
2. run a nominal transient,
3. inject a bridging fault with AnaFAULT's injector,
4. compare the faulty and fault-free responses under the paper's
   2 V / 0.2 us tolerances.

Run with:  python examples/quickstart.py
"""

from repro.anafault import ToleranceSettings, WaveformComparator, inject_fault
from repro.circuits import add_default_models
from repro.lift import BridgingFault
from repro.spice import (
    Capacitor,
    Circuit,
    Mosfet,
    Resistor,
    TransientAnalysis,
    VoltageSource,
)
from repro.spice.devices import DCShape, PulseShape
from repro.spice.waveform import ascii_plot


def build_amplifier() -> Circuit:
    """A resistively loaded common-source amplifier with an RC load."""
    circuit = Circuit("common-source amplifier")
    add_default_models(circuit)
    circuit.add(VoltageSource("VDD", "vdd", "0", DCShape(5.0)))
    circuit.add(VoltageSource("VIN", "in", "0",
                              PulseShape(1.0, 2.0, 1e-6, 10e-9, 10e-9, 4e-6, 10e-6)))
    circuit.add(Mosfet("M1", "out", "in", "0", "0", "nch", w=20e-6, l=2e-6))
    circuit.add(Resistor("RL", "vdd", "out", 50e3))
    circuit.add(Capacitor("CL", "out", "0", 1e-12))
    return circuit


def main() -> None:
    circuit = build_amplifier()

    # 1. Fault-free transient.
    analysis = dict(tstop=4e-6, tstep=10e-9, use_ic=False)
    nominal = TransientAnalysis(circuit, **analysis).run()["out"]
    print(f"nominal output: {nominal.minimum():.2f} .. {nominal.maximum():.2f} V")

    # 2. Inject a bridging fault (output shorted to ground, resistor model).
    fault = BridgingFault(1, net_a="out", net_b="0", origin_layer="metal1",
                          description="output shorted to ground")
    faulty_circuit = inject_fault(circuit, fault)
    faulty = TransientAnalysis(faulty_circuit, **analysis).run()["out"]
    print(f"faulty output : {faulty.minimum():.2f} .. {faulty.maximum():.2f} V")

    # 3. Compare under the paper's tolerances.
    comparator = WaveformComparator(ToleranceSettings(amplitude=2.0, time=0.2e-6))
    detection = comparator.compare(nominal, faulty)
    if detection.detected:
        print(f"fault {fault.label()} detected at "
              f"{detection.detection_time * 1e6:.2f} us "
              f"(max deviation {detection.max_deviation:.2f} V)")
    else:
        print(f"fault {fault.label()} NOT detected "
              f"(max deviation {detection.max_deviation:.2f} V)")

    nominal.name = "fault free"
    faulty.name = "faulty"
    print()
    print(ascii_plot([nominal, faulty], width=70, height=14,
                     title="amplifier output, fault-free vs faulty"))


if __name__ == "__main__":
    main()
