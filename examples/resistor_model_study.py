#!/usr/bin/env python3
"""Fault-model study: resistor vs source model and the shorting-resistor value.

Reproduces the two methodological observations of section VI on a reduced
fault set:

* the resistor model and the source model give (nearly) the same detection
  verdicts (the paper: "nearly identical fault coverage plots");
* the value chosen for the shorting resistor decides how visible a given
  bridge is at the circuit output (Fig. 6).

Run with:  python examples/resistor_model_study.py
"""

from repro.anafault import (
    CampaignSettings,
    FaultModelOptions,
    FaultSimulator,
    ToleranceSettings,
    WaveformComparator,
    inject_fault,
)
from repro.circuits import OUTPUT_NODE, build_vco, nominal_transient_settings
from repro.lift import BridgingFault, FaultList, StuckOpenFault
from repro.spice import TransientAnalysis


def build_fault_list() -> FaultList:
    faults = FaultList("model study")
    faults.add(BridgingFault(1, probability=3e-7, net_a="1", net_b="5",
                             origin_layer="metal1",
                             description="supply to capacitor node"))
    faults.add(BridgingFault(2, probability=2e-7, net_a="9", net_b="0",
                             origin_layer="metal1",
                             description="Schmitt internal node to ground"))
    faults.add(BridgingFault(3, probability=1e-7, net_a="12", net_b="13",
                             origin_layer="metal1",
                             description="switch control lines shorted"))
    faults.add(StuckOpenFault(4, probability=8e-8, device="M5",
                              terminal="drain",
                              description="charge current source stuck open"))
    return faults


def compare_models() -> None:
    circuit = build_vco()
    faults = build_fault_list()
    print("=== resistor model vs source model ===")
    for name, model in (("resistor", FaultModelOptions.resistor()),
                        ("source", FaultModelOptions.source())):
        settings = CampaignSettings(
            tstop=4e-6, tstep=1e-8, use_ic=True,
            observation_nodes=(OUTPUT_NODE,),
            tolerances=ToleranceSettings(2.0, 0.2e-6), fault_model=model)
        result = FaultSimulator(circuit, faults, settings).run()
        verdicts = {r.fault.fault_id: r.status for r in result.records}
        cpu = sum(r.elapsed_seconds for r in result.records)
        print(f"{name:>9} model: coverage {result.fault_coverage():.0%}, "
              f"CPU {cpu:.1f} s, verdicts {verdicts}")


def sweep_resistor_value() -> None:
    circuit = build_vco()
    nominal = TransientAnalysis(circuit, **nominal_transient_settings()).run()[OUTPUT_NODE]
    comparator = WaveformComparator(ToleranceSettings(2.0, 0.2e-6))
    fault = BridgingFault(6, net_a="10", net_b="0", origin_layer="metal1",
                          description="drain of Schmitt transistor M11 to ground")
    print("\n=== Fig. 6 style sweep of the shorting resistor ===")
    print(f"fault-free frequency: {nominal.frequency() / 1e6:.2f} MHz")
    for resistance in (1e6, 100e3, 10e3, 1e3, 41.0, 1.0):
        faulty = inject_fault(circuit, fault,
                              FaultModelOptions.resistor(short_resistance=resistance))
        wave = TransientAnalysis(faulty, **nominal_transient_settings()).run()[OUTPUT_NODE]
        detection = comparator.compare(nominal, wave)
        print(f"R = {resistance:>9.0f} Ohm: oscillates={wave.oscillates(min_swing=3.0)!s:<5} "
              f"f={wave.frequency() / 1e6:5.2f} MHz  detected={detection.detected}")


def main() -> None:
    compare_models()
    sweep_resistor_value()


if __name__ == "__main__":
    main()
